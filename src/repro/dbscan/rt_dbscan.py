"""RT-DBSCAN — the paper's core contribution (Algorithm 3).

The algorithm has two stages, both expressed as ε-ray launches on the
simulated RT device:

1. **Core-point identification** — one ray per point; the Intersection
   program counts confirmed sphere hits (excluding the self hit) and a point
   whose count reaches ``min_pts`` is a core point.  Nothing else is stored,
   which keeps memory at O(n).
2. **Cluster formation** — the neighbourhoods are recomputed with a second
   launch (the redundant work the paper accepts because hardware traversal is
   cheap) and merged with a union–find forest: core–core pairs are unioned,
   border points are attached atomically to one neighbouring core cluster.

The implementation charges every operation to the device cost model so that
benchmarks can report the Section V-D style breakdown (BVH build vs the two
clustering stages) and the simulated total time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.transforms import lift_to_3d, validate_points
from ..neighbors.rt_find import RTNeighborFinder
from ..perf.cost_model import OpCounts
from ..perf.timing import PhaseTimer
from ..rtcore.device import RTDevice
from .disjoint_set import ParallelDisjointSet
from .labels import labels_from_roots
from .params import DBSCANParams, DBSCANResult, canonicalize_labels

__all__ = ["RTDBSCAN", "rt_dbscan"]


@dataclass
class RTDBSCAN:
    """RT-DBSCAN clusterer.

    Parameters
    ----------
    eps:
        Maximum distance between two points in the same neighbourhood.
    min_pts:
        Minimum number of ε-neighbours (excluding the point itself) required
        for a core point.
    device:
        Simulated RT device; a default RTX 2060-like device is created when
        omitted.
    builder, leaf_size, chunk_size:
        Acceleration-structure parameters forwarded to the RT pipeline.
    triangle_mode:
        Use the Section VI-C triangle tessellation instead of the sphere
        Intersection program (slower; for the ablation benchmark).
    keep_neighbor_counts:
        Store the per-point neighbour counts in the result so that re-running
        with a different ``min_pts`` can skip stage 1 (Section VI-B).
    """

    eps: float
    min_pts: int
    device: RTDevice | None = None
    builder: str = "lbvh"
    leaf_size: int = 4
    chunk_size: int = 16384
    triangle_mode: bool = False
    triangle_subdivisions: int = 0
    keep_neighbor_counts: bool = True

    def __post_init__(self) -> None:
        self.params = DBSCANParams(eps=self.eps, min_pts=self.min_pts)
        self.device = self.device or RTDevice()

    # ------------------------------------------------------------------ #
    def fit(self, points: np.ndarray) -> DBSCANResult:
        """Cluster ``points`` and return the labelling with its timing report."""
        pts3 = lift_to_3d(validate_points(points))
        n = pts3.shape[0]
        timer = PhaseTimer("rt-dbscan", self.device.cost_model)
        timer.metadata.update(
            {
                "eps": self.params.eps,
                "min_pts": self.params.min_pts,
                "num_points": n,
                "device": self.device.name,
                "triangle_mode": self.triangle_mode,
            }
        )

        # -------------------------------------------------------------- #
        # Scene setup + hardware BVH build over the ε-spheres.
        # -------------------------------------------------------------- #
        finder = None
        with timer.phase("bvh_build") as counts:
            finder = RTNeighborFinder(
                pts3,
                self.params.eps,
                device=self.device,
                builder=self.builder,
                leaf_size=self.leaf_size,
                chunk_size=self.chunk_size,
                triangle_mode=self.triangle_mode,
                triangle_subdivisions=self.triangle_subdivisions,
            )
            counts.bvh_build_prims = len(finder.group.geom.primitives)
            counts.kernel_launches += 1
        # The build time is derived from the primitive count, not the counts
        # recorded above; patch the phase with the device's build estimate.
        timer._phases[-1].simulated_seconds = finder.build_seconds

        try:
            # ---------------------------------------------------------- #
            # Stage 1 — core point identification (Algorithm 3, lines 1-6).
            # ---------------------------------------------------------- #
            with timer.phase("core_identification") as counts:
                if self.triangle_mode:
                    # Triangle hits over-count per-sphere intersections, so
                    # the counts come from deduplicated hit pairs instead.
                    q_hit, p_hit, stats1 = finder.neighbor_pairs()
                    neighbor_counts = np.bincount(q_hit, minlength=n).astype(np.int64)
                else:
                    neighbor_counts, stats1 = finder.neighbor_counts()
                counts.merge(stats1.counts)
                core_mask = neighbor_counts >= self.params.min_pts

            # ---------------------------------------------------------- #
            # Stage 2 — cluster formation with union-find (lines 7-18).
            # ---------------------------------------------------------- #
            with timer.phase("cluster_formation") as counts:
                if self.triangle_mode:
                    stats2 = stats1  # pairs already computed above
                else:
                    q_hit, p_hit, stats2 = finder.neighbor_pairs()
                    counts.merge(stats2.counts)

                forest = ParallelDisjointSet(n)
                # Only pairs whose query point is a core point expand clusters.
                from_core = core_mask[q_hit]
                cq, cp = q_hit[from_core], p_hit[from_core]

                both_core = core_mask[cp]
                forest.union_edges(cq[both_core], cp[both_core])

                # Border points: attach to one neighbouring core cluster
                # atomically (the critical section of Algorithm 3).  The
                # winning core is the lowest-indexed one — equivalent to
                # launching the core rays in index order — which keeps the
                # assignment independent of BVH traversal order and lets the
                # streaming engine reproduce it incrementally.
                border_children = cp[~both_core]
                border_parents = cq[~both_core]
                if border_children.size:
                    order = np.lexsort((border_parents, border_children))
                    border_children = border_children[order]
                    border_parents = border_parents[order]
                forest.attach(border_children, border_parents)

                counts.union_ops += forest.num_unions
                counts.atomic_ops += forest.num_atomics
                self.device.charge(
                    OpCounts(union_ops=forest.num_unions, atomic_ops=forest.num_atomics)
                )

                roots = forest.roots()
                assigned = np.zeros(n, dtype=bool)
                assigned[np.unique(border_children)] = True
                labels = labels_from_roots(roots, core_mask, assigned_mask=assigned)
        finally:
            if finder is not None:
                finder.release()

        report = timer.report()
        return DBSCANResult(
            labels=canonicalize_labels(labels),
            core_mask=core_mask,
            params=self.params,
            algorithm="rt-dbscan" if not self.triangle_mode else "rt-dbscan-triangles",
            report=report,
            neighbor_counts=neighbor_counts if self.keep_neighbor_counts else None,
            extra={"build_seconds": finder.build_seconds if finder else 0.0},
        )


def rt_dbscan(points: np.ndarray, eps: float, min_pts: int, **kwargs) -> DBSCANResult:
    """Functional convenience wrapper around :class:`RTDBSCAN`."""
    return RTDBSCAN(eps=eps, min_pts=min_pts, **kwargs).fit(points)
