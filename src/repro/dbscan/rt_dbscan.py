"""RT-DBSCAN — the paper's core contribution (Algorithm 3).

The algorithm has two stages, both expressed as fixed-radius neighbour
queries against a pluggable search substrate (by default ε-ray launches on
the simulated RT device):

1. **Core-point identification** — one query per point; a point whose
   confirmed ε-neighbour count (excluding the self hit) reaches ``min_pts``
   is a core point.  Nothing else is stored, which keeps memory at O(n).
2. **Cluster formation** — the neighbourhoods are recomputed with a second
   query pass (the redundant work the paper accepts because hardware
   traversal is cheap) and merged with a union–find forest: core–core pairs
   are unioned, border points are attached atomically to one neighbouring
   core cluster (see :mod:`repro.dbscan.formation`).

The neighbour search is resolved from the backend registry
(:mod:`repro.neighbors.backend`): ``backend="rt"`` is the paper's RT-core
pipeline, while ``"grid"``, ``"kdtree"`` and ``"brute"`` run the identical
Algorithm 3 on host substrates — a CPU fast path and the backend-ablation
experiment in one mechanism.  Labels are bit-identical across backends; only
the operations charged to the device cost model differ, so benchmarks can
report the Section V-D style breakdown (index build vs the two clustering
stages) for every substrate.

For datasets that outgrow one device (or to use more host cores),
:class:`~repro.partition.tiled.TiledRTDBSCAN` runs this same pipeline
shard-locally over spatial tiles with ε-halo ghost regions and stitches the
shards with the stage-2 :func:`~repro.dbscan.formation.form_clusters` pass —
labels stay bit-identical to this class's.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

import numpy as np

from ..api.protocol import ClustererMixin
from ..api.registry import make_backend, register_algorithm
from ..geometry.transforms import ensure_points3d
from ..native import dispatch as native_dispatch
from ..perf.cost_model import OpCounts
from ..perf.timing import PhaseTimer
from ..rtcore.device import RTDevice
from .formation import form_clusters_csr
from .params import DBSCANParams, DBSCANResult

__all__ = ["RTDBSCAN", "rt_dbscan"]


@register_algorithm(
    "rt-dbscan",
    description="The paper's Algorithm 3 on the simulated RT device (pluggable backends).",
    supports_backend=True,
    supports_native=True,
)
@dataclass
class RTDBSCAN(ClustererMixin):
    """RT-DBSCAN clusterer.

    Parameters
    ----------
    eps:
        Maximum distance between two points in the same neighbourhood.
    min_pts:
        Minimum number of ε-neighbours (excluding the point itself) required
        for a core point.
    device:
        Simulated RT device; a default RTX 2060-like device is created when
        omitted.
    backend:
        Neighbour-search substrate: ``"rt"`` (default, the paper's RT-core
        ray queries), ``"grid"``, ``"kdtree"`` or ``"brute"``.  All backends
        produce identical labels; only the simulated cost differs.
    builder, leaf_size, chunk_size:
        Acceleration-structure parameters forwarded to the RT pipeline
        (ignored by the host backends).
    triangle_mode:
        Use the Section VI-C triangle tessellation instead of the sphere
        Intersection program (slower; for the ablation benchmark).  Only
        meaningful with the ``"rt"`` backend.
    backend_kwargs:
        Extra keyword arguments forwarded verbatim to the backend factory —
        the knob channel of the approximate tier (e.g.
        ``backend="lsh", backend_kwargs={"recall_target": 0.8}``).  With an
        approximate backend the labels are no longer bit-identical to the
        exact substrates; pair such runs with
        :func:`repro.metrics.agreement_summary` or
        ``repro.cluster(..., reference=...)``.
    keep_neighbor_counts:
        Store the per-point neighbour counts (and the points) in the result
        so that :meth:`DBSCANResult.refit` can relabel with a different
        ``min_pts`` without a second stage-1 launch (Section VI-B).
    native:
        Kernel-tier override for this fit: ``True`` forces the compiled C
        kernels, ``False`` forces pure numpy, ``None`` (default) defers to
        the ``REPRO_NATIVE`` environment knob.  Labels and charged operation
        counts are identical either way; the tier actually used is recorded
        as ``result.extra["kernel_tier"]``.
    native_threads:
        OpenMP worker-count override for this fit's native kernels: a
        positive integer pins the fan-out, ``None`` (default) defers to the
        ``REPRO_NATIVE_THREADS`` environment knob.  Byte-identical results
        at any count; ignored on the numpy tier or a serial build.
    """

    eps: float
    min_pts: int
    device: RTDevice | None = None
    backend: str = "rt"
    builder: str = "lbvh"
    leaf_size: int = 4
    chunk_size: int = 16384
    triangle_mode: bool = False
    triangle_subdivisions: int = 0
    keep_neighbor_counts: bool = True
    backend_kwargs: dict | None = None
    native: bool | None = None
    native_threads: int | None = None

    def __post_init__(self) -> None:
        self.params = DBSCANParams(eps=self.eps, min_pts=self.min_pts)
        self.device = self.device or RTDevice()
        self.backend = str(self.backend).lower()
        if self.triangle_mode and self.backend != "rt":
            raise ValueError(
                f"triangle_mode requires the 'rt' backend, got {self.backend!r}"
            )

    def _backend_kwargs(self) -> dict:
        if self.backend == "rt":
            kwargs = {
                "builder": self.builder,
                "leaf_size": self.leaf_size,
                "chunk_size": self.chunk_size,
                "triangle_mode": self.triangle_mode,
                "triangle_subdivisions": self.triangle_subdivisions,
            }
        else:
            kwargs = {}
        if self.backend_kwargs:
            kwargs.update(self.backend_kwargs)
        return kwargs

    # ------------------------------------------------------------------ #
    def fit(self, points: np.ndarray) -> DBSCANResult:
        """Cluster ``points`` and return the labelling with its timing report."""
        ctx = (
            native_dispatch.override(self.native)
            if self.native is not None
            else contextlib.nullcontext()
        )
        tctx = (
            native_dispatch.thread_override(self.native_threads)
            if self.native_threads is not None
            else contextlib.nullcontext()
        )
        with ctx, tctx:
            return self._fit(points)

    def _fit(self, points: np.ndarray) -> DBSCANResult:
        pts3 = ensure_points3d(points)
        n = pts3.shape[0]
        timer = PhaseTimer("rt-dbscan", self.device.cost_model)
        timer.metadata.update(
            {
                "eps": self.params.eps,
                "min_pts": self.params.min_pts,
                "num_points": n,
                "device": self.device.name,
                "backend": self.backend,
                "triangle_mode": self.triangle_mode,
            }
        )

        # -------------------------------------------------------------- #
        # Scene setup + index build over the ε-spheres (BVH on the RT
        # backend, grid/KD-tree on the host backends, nothing for brute).
        # -------------------------------------------------------------- #
        finder = None
        with timer.phase("bvh_build") as counts:
            finder = make_backend(
                self.backend,
                pts3,
                self.params.eps,
                device=self.device,
                **self._backend_kwargs(),
            )
            counts.bvh_build_prims = finder.num_prims
            counts.kernel_launches += 1
        # The build time is derived from the primitive count, not the counts
        # recorded above; patch the phase with the backend's build estimate.
        timer.set_last_phase_seconds(finder.build_seconds)

        try:
            # ---------------------------------------------------------- #
            # Stage 1 — core point identification (Algorithm 3, lines 1-6).
            # ---------------------------------------------------------- #
            with timer.phase("core_identification") as counts:
                if self.triangle_mode:
                    # Triangle hits over-count per-sphere intersections, so
                    # the counts come from the deduplicated hit adjacency.
                    indptr, indices, stats1 = finder.neighbor_csr()
                    neighbor_counts = np.diff(indptr)
                else:
                    neighbor_counts, stats1 = finder.neighbor_counts()
                counts.merge(stats1.counts)
                core_mask = neighbor_counts >= self.params.min_pts

            # ---------------------------------------------------------- #
            # Stage 2 — cluster formation with union-find (lines 7-18).
            # The adjacency is recomputed as a CSR launch (the redundant
            # work the paper accepts) and consumed directly — no pair
            # arrays are materialised (triangle mode already holds its
            # deduplicated adjacency from stage 1).
            # ---------------------------------------------------------- #
            with timer.phase("cluster_formation") as counts:
                if not self.triangle_mode:
                    indptr, indices, stats2 = finder.neighbor_csr()
                    counts.merge(stats2.counts)

                formation = form_clusters_csr(indptr, indices, core_mask)
                counts.union_ops += formation.num_unions
                counts.atomic_ops += formation.num_atomics
                self.device.charge(
                    OpCounts(
                        union_ops=formation.num_unions,
                        atomic_ops=formation.num_atomics,
                    )
                )
                labels = formation.labels
        finally:
            if finder is not None:
                finder.release()

        report = timer.report()
        return DBSCANResult(
            labels=labels,
            core_mask=core_mask,
            params=self.params,
            algorithm="rt-dbscan" if not self.triangle_mode else "rt-dbscan-triangles",
            report=report,
            neighbor_counts=neighbor_counts if self.keep_neighbor_counts else None,
            points=pts3 if self.keep_neighbor_counts else None,
            extra={
                "build_seconds": finder.build_seconds if finder else 0.0,
                "backend": self.backend,
                "kernel_tier": native_dispatch.active_tier(),
                **(
                    {"backend_kwargs": dict(self.backend_kwargs)}
                    if self.backend_kwargs
                    else {}
                ),
            },
        )


@register_algorithm(
    "rt-dbscan-triangles",
    description="RT-DBSCAN with triangle-tessellated spheres (Section VI-C ablation).",
)
def _rt_dbscan_triangles(eps: float, min_pts: int, device=None, **kwargs) -> RTDBSCAN:
    kwargs.setdefault("triangle_mode", True)
    return RTDBSCAN(eps=eps, min_pts=min_pts, device=device, **kwargs)


def rt_dbscan(points: np.ndarray, eps: float, min_pts: int, **kwargs) -> DBSCANResult:
    """Functional convenience wrapper around :class:`RTDBSCAN`."""
    return RTDBSCAN(eps=eps, min_pts=min_pts, **kwargs).fit(points)
