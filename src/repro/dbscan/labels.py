"""Label extraction and point classification helpers.

Shared by every DBSCAN implementation: turning a union–find forest (or any
per-point "component id") plus the core/noise information into the canonical
label array described in :mod:`repro.dbscan.params`.
"""

from __future__ import annotations

import numpy as np

from .params import NOISE

__all__ = ["labels_from_roots", "classify_points", "PointClass"]


class PointClass:
    """Integer codes for the three DBSCAN point classes."""

    CORE = 2
    BORDER = 1
    NOISE = 0


def classify_points(core_mask: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-point class codes (CORE / BORDER / NOISE) from a finished run."""
    core_mask = np.asarray(core_mask, dtype=bool)
    labels = np.asarray(labels)
    out = np.full(core_mask.shape, PointClass.NOISE, dtype=np.int8)
    out[(labels >= 0) & ~core_mask] = PointClass.BORDER
    out[core_mask] = PointClass.CORE
    return out


def labels_from_roots(
    roots: np.ndarray, core_mask: np.ndarray, assigned_mask: np.ndarray | None = None
) -> np.ndarray:
    """Convert union–find roots into canonical cluster labels.

    Parameters
    ----------
    roots:
        ``(n,)`` representative of every point's set.
    core_mask:
        ``(n,)`` boolean core-point mask; clusters are the sets that contain
        at least one core point.
    assigned_mask:
        Optional mask of points that were explicitly attached to a cluster
        (border points).  Defaults to ``core_mask`` — points that are neither
        core nor assigned are labelled noise even if they share a singleton
        set with themselves.

    Returns
    -------
    labels:
        ``(n,)`` canonical labels: clusters numbered 0..k-1 in order of their
        smallest member index, noise = -1.
    """
    roots = np.asarray(roots, dtype=np.intp)
    core_mask = np.asarray(core_mask, dtype=bool)
    n = roots.shape[0]
    if core_mask.shape != (n,):
        raise ValueError("core_mask must match roots in length")
    member = core_mask.copy()
    if assigned_mask is not None:
        member |= np.asarray(assigned_mask, dtype=bool)

    labels = np.full(n, NOISE, dtype=np.int64)
    if not member.any():
        return labels

    # A set forms a cluster only if it contains a core point.
    core_roots = np.unique(roots[core_mask])
    is_cluster_root = np.zeros(roots.max() + 1 if n else 0, dtype=bool)
    is_cluster_root[core_roots] = True

    clustered = member & is_cluster_root[roots]
    if not clustered.any():
        return labels

    # Number clusters by the smallest member index they contain.
    cluster_roots = roots[clustered]
    order = np.argsort(np.flatnonzero(clustered), kind="stable")  # already ascending
    uniq_roots, first_pos = np.unique(cluster_roots, return_index=True)
    first_member_idx = np.flatnonzero(clustered)[first_pos]
    rank = np.argsort(np.argsort(first_member_idx))
    root_to_label = dict(zip(uniq_roots.tolist(), rank.tolist()))
    labels[clustered] = np.asarray(
        [root_to_label[r] for r in cluster_roots.tolist()], dtype=np.int64
    )
    return labels
