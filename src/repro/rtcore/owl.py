"""OWL-style wrapper API.

The paper implements RT-DBSCAN against the OptiX Wrapper Library (OWL), which
exposes OptiX 7 through a small C API: create a context, declare a geometry
type with its bounds/intersection programs, instantiate a geometry, build a
group (acceleration structure), and launch a ray-generation program.  This
module provides the same vocabulary on top of :class:`ScenePipeline` so that
the example programs and the RT-DBSCAN implementation read like their OWL
counterparts.  It is a thin facade: all behaviour lives in the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry.sphere import SphereGeometry
from ..geometry.triangle import TriangleGeometry, tessellate_spheres
from .counters import LaunchStats
from .device import RTDevice
from .pipeline import ScenePipeline
from .programs import ProgramGroup, sphere_intersection_program

__all__ = ["OWLContext", "OWLGeomType", "OWLGeom", "OWLGroup", "owl_context_create"]


@dataclass
class OWLGeomType:
    """Declaration of a user geometry type and its device programs."""

    kind: str  # "spheres" or "triangles"
    programs: ProgramGroup | None = None
    name: str = "geom-type"

    def __post_init__(self) -> None:
        if self.kind not in ("spheres", "triangles"):
            raise ValueError("geometry kind must be 'spheres' or 'triangles'")


@dataclass
class OWLGeom:
    """A geometry instance: a geometry type bound to primitive data."""

    geom_type: OWLGeomType
    primitives: SphereGeometry | TriangleGeometry

    @property
    def num_primitives(self) -> int:
        return len(self.primitives)


@dataclass
class OWLGroup:
    """An acceleration-structure group over one geometry instance."""

    context: "OWLContext"
    geom: OWLGeom
    pipeline: ScenePipeline
    build_seconds: float = 0.0

    def launch_hits(self, points: np.ndarray, programs: ProgramGroup | None = None):
        """Launch ε-rays from ``points`` and return confirmed hit pairs."""
        progs = programs or self.geom.geom_type.programs
        if progs is None:
            raise ValueError("no program group bound to this geometry type")
        return self.pipeline.launch_hit_queries(points, progs)

    def launch_csr(self, points: np.ndarray, programs: ProgramGroup | None = None):
        """Launch ε-rays from ``points``; confirmed hits come back as CSR.

        The zero-materialisation counterpart of :meth:`launch_hits`: returns
        ``(indptr, indices, stats)`` with identical charged operation counts
        but without ever materialising the candidate pair arrays.
        """
        progs = programs or self.geom.geom_type.programs
        if progs is None:
            raise ValueError("no program group bound to this geometry type")
        return self.pipeline.launch_csr_queries(points, progs)

    def launch_counts(self, points: np.ndarray, programs: ProgramGroup | None = None,
                      *, min_count: int | None = None):
        """Launch ε-rays from ``points`` and return per-ray confirmed-hit counts."""
        progs = programs or self.geom.geom_type.programs
        if progs is None:
            raise ValueError("no program group bound to this geometry type")
        return self.pipeline.launch_counts_with(points, progs, min_count)

    def refit_accel(self) -> float:
        """Refit the acceleration structure to the geometry's current bounds.

        Mirrors ``owlGroupRefitAccel``: cheaper than a rebuild, keeps the
        topology, and is what incremental / streaming callers use after
        moving primitives.  Returns the simulated refit time.
        """
        return self.pipeline.refit_accel()

    def release(self) -> None:
        self.pipeline.release()


# ``launch_counts_with`` is a tiny adapter so OWLGroup keeps a stable surface
# even if the pipeline signature evolves.
def _launch_counts_with(self: ScenePipeline, points, programs, min_count):
    return self.launch_count_queries(points, programs, min_count=min_count)


ScenePipeline.launch_counts_with = _launch_counts_with  # type: ignore[attr-defined]


@dataclass
class OWLContext:
    """Top-level OWL context bound to one simulated device."""

    device: RTDevice
    groups: list[OWLGroup] = field(default_factory=list)

    # -- geometry-type and geometry creation ---------------------------- #
    def create_sphere_geom_type(
        self, centers: np.ndarray, radius: float, *, exclude_self: bool = True,
        name: str = "eps-spheres",
    ) -> tuple[OWLGeomType, OWLGeom]:
        """Declare the paper's ε-sphere geometry with its Intersection program."""
        spheres = SphereGeometry(centers, radius)
        programs = ProgramGroup(
            intersection=sphere_intersection_program(
                spheres.centers, radius, exclude_self=exclude_self
            ),
            name=name,
            # Descriptor for the optional native (C) tier: the sphere program
            # above is ``d(centers[q], centers[p])² <= r²`` with an optional
            # index self filter, which the native BVH kernel replicates
            # bit-for-bit (see repro.rtcore.pipeline._native_sphere_query).
            payload={
                "native_sphere": {
                    "centers": spheres.centers,
                    "confirm_pts": spheres.centers,
                    "r2": float(radius) ** 2,
                    "exclude_self": bool(exclude_self),
                }
            },
        )
        geom_type = OWLGeomType(kind="spheres", programs=programs, name=name)
        return geom_type, OWLGeom(geom_type, spheres)

    def create_triangle_geom_type(
        self, centers: np.ndarray, radius: float, *, subdivisions: int = 0,
        exclude_self: bool = True, name: str = "tessellated-spheres",
    ) -> tuple[OWLGeomType, OWLGeom]:
        """Declare the Section VI-C triangle-tessellated sphere geometry."""
        from ..geometry.transforms import lift_to_3d

        lifted = lift_to_3d(np.asarray(centers, dtype=np.float64))
        tris = tessellate_spheres(lifted, radius, subdivisions=subdivisions)
        owners = tris.owners

        def intersection(query_idx: np.ndarray, prim_idx: np.ndarray) -> np.ndarray:
            d = lifted[query_idx] - lifted[owners[prim_idx]]
            hit = np.einsum("ij,ij->i", d, d) <= radius**2
            if exclude_self:
                hit &= query_idx != owners[prim_idx]
            return hit

        programs = ProgramGroup(intersection=intersection, name=name)
        geom_type = OWLGeomType(kind="triangles", programs=programs, name=name)
        return geom_type, OWLGeom(geom_type, tris)

    # -- group (acceleration structure) building ------------------------ #
    def build_group(
        self, geom: OWLGeom, *, builder: str = "lbvh", leaf_size: int = 4,
        chunk_size: int = 16384,
    ) -> OWLGroup:
        """Build the acceleration structure for a geometry instance."""
        pipeline = ScenePipeline(
            device=self.device, geometry=geom.primitives, builder=builder,
            leaf_size=leaf_size, chunk_size=chunk_size,
        )
        build_seconds = pipeline.build_accel()
        group = OWLGroup(context=self, geom=geom, pipeline=pipeline, build_seconds=build_seconds)
        self.groups.append(group)
        return group

    def destroy(self) -> None:
        """Release all groups owned by the context."""
        for group in self.groups:
            group.release()
        self.groups.clear()


def owl_context_create(device: RTDevice | None = None) -> OWLContext:
    """Create an OWL context on the given (or a default) simulated device."""
    return OWLContext(device=device or RTDevice())
