"""Simulated RT hardware and OptiX/OWL-style programming model.

``RTDevice`` stands in for the RTX 2060 testbed; ``ScenePipeline`` reproduces
the OptiX pipeline of Fig. 2 (bounds program → hardware BVH build → hardware
traversal → Intersection/AnyHit programs); ``owl`` offers the OWL-flavoured
facade the paper's implementation is written against.
"""

from .counters import LaunchStats
from .device import RTDevice
from .owl import OWLContext, OWLGeom, OWLGeomType, OWLGroup, owl_context_create
from .pipeline import ScenePipeline
from .programs import ProgramGroup, sphere_intersection_program

__all__ = [
    "LaunchStats",
    "RTDevice",
    "OWLContext",
    "OWLGeom",
    "OWLGeomType",
    "OWLGroup",
    "owl_context_create",
    "ScenePipeline",
    "ProgramGroup",
    "sphere_intersection_program",
]
