"""Simulated RT-capable GPU device.

``RTDevice`` stands in for the paper's NVIDIA RTX 2060: it owns a cost model
(how fast the RT cores and shader cores are), a device-memory tracker (6 GB),
and a running tally of the operations executed on it.  All higher layers —
the OptiX-style pipeline, the OWL wrapper and the DBSCAN algorithms — charge
their work to a device instance, which is what makes the simulated timings
comparable across algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..perf.cost_model import DEFAULT_COST_MODEL, DeviceCostModel, OpCounts
from ..perf.memory import MemoryTracker

__all__ = ["RTDevice"]


@dataclass
class RTDevice:
    """A simulated GPU with RT cores and shader cores.

    Parameters
    ----------
    cost_model:
        Per-operation simulated costs; defaults to the RTX 2060 calibration.
    has_rt_cores:
        When False, BVH build and traversal fall back to shader-core costs —
        this is what OptiX does on GPUs without RT hardware and is used by
        the ablation benchmarks.
    name:
        Label used in reports.
    """

    cost_model: DeviceCostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)
    has_rt_cores: bool = True
    name: str = "sim-rtx2060"
    memory: MemoryTracker = field(default=None)  # type: ignore[assignment]
    total_counts: OpCounts = field(default_factory=OpCounts)

    def __post_init__(self) -> None:
        if self.memory is None:
            self.memory = MemoryTracker(capacity_bytes=self.cost_model.device_memory_bytes)

    # ------------------------------------------------------------------ #
    def charge(self, counts: OpCounts) -> float:
        """Account a bag of operations and return its simulated seconds."""
        self.total_counts.merge(counts)
        return self.cost_model.time_s(counts)

    def accel_build_seconds(self, num_prims: int) -> float:
        """Simulated time to build an acceleration structure over ``num_prims``.

        Uses the RT (OptiX) builder cost when RT cores are present, otherwise
        the software builder cost.
        """
        unit = "rt" if self.has_rt_cores else "sm"
        return self.cost_model.build_time_s(num_prims, unit=unit)

    def accel_refit_seconds(self, num_prims: int) -> float:
        """Simulated time to refit an existing acceleration structure.

        Refit recomputes node bounds in place (no topology change), which the
        cost model prices well below a fresh build; the streaming subsystem
        relies on this gap when choosing refit over rebuild.
        """
        unit = "rt" if self.has_rt_cores else "sm"
        return self.cost_model.refit_time_s(num_prims, unit=unit)

    def node_visit_field(self) -> str:
        """Which OpCounts field BVH traversal on this device should charge."""
        return "rt_node_visits" if self.has_rt_cores else "sm_node_visits"

    def reset(self) -> None:
        """Clear accumulated counters and memory allocations."""
        self.total_counts = OpCounts()
        self.memory.reset()

    def summary(self) -> dict:
        return {
            "name": self.name,
            "has_rt_cores": self.has_rt_cores,
            "memory_used_bytes": self.memory.used_bytes,
            "memory_capacity_bytes": self.memory.capacity_bytes,
            "counts": self.total_counts.as_dict(),
        }
