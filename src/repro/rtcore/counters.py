"""Launch statistics.

``LaunchStats`` is the record a pipeline launch returns alongside its hits:
the traversal counters (node visits, leaf visits, candidate tests), the
number of Intersection / AnyHit program invocations, and the simulated time
the launch cost on the device.  The DBSCAN implementations aggregate these
into their per-phase execution reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bvh.traversal import TraversalStats
from ..perf.cost_model import OpCounts

__all__ = ["LaunchStats"]


@dataclass
class LaunchStats:
    """Statistics for a single RT pipeline launch."""

    num_rays: int = 0
    traversal: TraversalStats = field(default_factory=TraversalStats)
    intersection_calls: int = 0
    anyhit_calls: int = 0
    confirmed_hits: int = 0
    simulated_seconds: float = 0.0
    counts: OpCounts = field(default_factory=OpCounts)

    def as_dict(self) -> dict:
        return {
            "num_rays": self.num_rays,
            "traversal": self.traversal.as_dict(),
            "intersection_calls": self.intersection_calls,
            "anyhit_calls": self.anyhit_calls,
            "confirmed_hits": self.confirmed_hits,
            "simulated_seconds": self.simulated_seconds,
        }
