"""OptiX-style scene pipeline on the simulated RT device.

The pipeline mirrors the structure of Fig. 2 in the paper:

1.  the user supplies a geometry (ε-spheres, or their triangle tessellation
    for the Section VI-C ablation) together with its bounds program;
2.  ``build_accel`` hands the per-primitive AABBs to the device, which builds
    the BVH (hardware-accelerated when RT cores are present) and charges the
    build cost;
3.  ``launch_*`` generates one query ray per input point, traverses the BVH
    in "hardware" (the vectorised frontier kernels of :mod:`repro.bvh`), and
    invokes the user's Intersection program once per candidate primitive and
    the optional AnyHit program once per confirmed hit.

Every launch returns a :class:`LaunchStats` record with the operation counts
and the simulated device time, which the DBSCAN implementations aggregate
into their per-phase reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..adjacency import pairs_to_csr
from ..bvh.lbvh import build_lbvh
from ..bvh.node import BVH
from ..bvh.refit import refit as refit_bvh
from ..bvh.sah import build_sah
from ..bvh.traversal import (
    point_query_counts_early_exit,
    point_query_csr,
    point_query_pairs,
)
from ..bvh.traversal import TraversalStats
from ..geometry.sphere import SphereGeometry
from ..geometry.transforms import ensure_points3d
from ..geometry.triangle import TriangleGeometry
from ..native import dispatch as native_dispatch
from ..perf.cost_model import OpCounts
from .counters import LaunchStats
from .device import RTDevice
from .programs import ProgramGroup

__all__ = ["ScenePipeline"]


def _native_sphere_query(bvh, pts: np.ndarray, programs: ProgramGroup, collect: bool):
    """Run a sphere-program launch on the native tier, if possible.

    Engages only when the program group carries a ``native_sphere`` payload
    (the descriptor the sphere-geometry constructors attach; see
    :mod:`repro.rtcore.programs`) and the native kernels are active.  Returns
    ``None`` to run the numpy traversal, else ``(row_counts, traversal)`` in
    counting mode or ``(indptr, indices, traversal)`` in CSR mode — all
    byte-identical to the numpy kernels, stats included.
    """
    desc = programs.payload.get("native_sphere")
    if desc is None:
        return None
    nk = native_dispatch.kernels()
    if nk is None:
        return None
    qpts = np.ascontiguousarray(pts)
    confirm_pts = desc["confirm_pts"]
    centers = desc["centers"]
    if confirm_pts.shape[0] < qpts.shape[0]:
        return None
    nq = qpts.shape[0]
    row_counts = np.zeros(nq, dtype=np.int64)
    stats_buf = np.zeros(5, dtype=np.int64)
    kwargs = dict(
        exclude_self=desc.get("exclude_self", False),
        self_map=desc.get("self_map"),
        active=desc.get("active"),
    )
    ok = nk.bvh_sphere(
        qpts, confirm_pts, bvh, centers, desc["r2"],
        row_counts=row_counts, stats=stats_buf, **kwargs,
    )
    if not ok:
        return None
    traversal = TraversalStats(
        queries=nq,
        node_visits=int(stats_buf[0]),
        leaf_visits=int(stats_buf[1]),
        candidates=int(stats_buf[2]),
        confirmed=int(stats_buf[3]),
        levels=int(stats_buf[4]),
    )
    if not collect:
        return row_counts, traversal
    indptr = np.zeros(nq + 1, dtype=np.int64)
    np.cumsum(row_counts, out=indptr[1:])
    indices = np.empty(int(indptr[-1]), dtype=np.intp)
    nk.bvh_sphere(
        qpts, confirm_pts, bvh, centers, desc["r2"],
        indptr=indptr, indices=indices, **kwargs,
    )
    return indptr, indices, traversal


@dataclass
class ScenePipeline:
    """A scene (geometry + acceleration structure) ready for ray launches.

    Parameters
    ----------
    device:
        The simulated GPU the pipeline runs on.
    geometry:
        Either a :class:`SphereGeometry` (the paper's normal mode) or a
        :class:`TriangleGeometry` (the Section VI-C triangle mode).
    builder:
        ``"lbvh"`` (hardware-style Morton builder, default) or ``"sah"``.
    leaf_size:
        Maximum primitives per BVH leaf.
    chunk_size:
        Number of query rays traversed per vectorised frontier pass.
    """

    device: RTDevice
    geometry: SphereGeometry | TriangleGeometry
    builder: str = "lbvh"
    leaf_size: int = 4
    chunk_size: int = 16384
    bvh: BVH | None = field(default=None, init=False)
    accel_build_seconds: float = field(default=0.0, init=False)

    # ------------------------------------------------------------------ #
    @property
    def num_primitives(self) -> int:
        return len(self.geometry)

    @property
    def is_triangle_mode(self) -> bool:
        return isinstance(self.geometry, TriangleGeometry)

    def build_accel(self) -> float:
        """Build the acceleration structure; returns the simulated build time.

        The device memory tracker is charged for the BVH and the primitive
        buffers, reproducing the footprint the OptiX builder would allocate.
        """
        bounds = self.geometry.bounds()
        if self.builder == "lbvh":
            self.bvh = build_lbvh(bounds, leaf_size=self.leaf_size)
        elif self.builder == "sah":
            self.bvh = build_sah(bounds, leaf_size=self.leaf_size)
        else:
            raise ValueError(f"unknown builder {self.builder!r}")
        self.device.memory.allocate("accel_structure", self.bvh.memory_bytes())
        if isinstance(self.geometry, SphereGeometry):
            prim_bytes = self.geometry.centers.nbytes + self.geometry.radii.nbytes
        else:
            prim_bytes = self.geometry.vertices.nbytes + self.geometry.faces.nbytes
        self.device.memory.allocate("primitive_buffers", prim_bytes)
        self.accel_build_seconds = self.device.accel_build_seconds(self.num_primitives)
        return self.accel_build_seconds

    def refit_accel(self) -> float:
        """Refit the acceleration structure to the geometry's current bounds.

        The tree topology (node layout, leaf ranges, primitive order) is
        preserved; only the per-primitive and per-node bounds are recomputed.
        This is the OptiX "accel update" path the streaming subsystem uses
        when a window update moves, adds or parks a small number of spheres.
        Returns the simulated refit time; the device counters are charged
        with the per-primitive refit work.
        """
        bvh = self._require_accel()
        self.bvh = refit_bvh(bvh, self.geometry.bounds())
        self.device.charge(
            OpCounts(bvh_refit_prims=self.num_primitives, kernel_launches=1)
        )
        return self.device.accel_refit_seconds(self.num_primitives)

    # ------------------------------------------------------------------ #
    def _require_accel(self) -> BVH:
        if self.bvh is None:
            raise RuntimeError("build_accel() must be called before launching rays")
        return self.bvh

    def _charge_launch(self, stats: LaunchStats) -> None:
        counts = OpCounts(kernel_launches=1)
        if self.device.has_rt_cores:
            counts.rt_node_visits = stats.traversal.node_visits
        else:
            counts.sm_node_visits = stats.traversal.node_visits
        counts.intersection_calls = stats.intersection_calls
        counts.anyhit_calls = stats.anyhit_calls
        stats.counts = counts
        stats.simulated_seconds = self.device.charge(counts)

    # ------------------------------------------------------------------ #
    def launch_hit_queries(
        self, points: np.ndarray, programs: ProgramGroup
    ) -> tuple[np.ndarray, np.ndarray, LaunchStats]:
        """Launch one ε-ray per point and return all confirmed hits.

        Returns ``(query_idx, prim_idx, stats)`` where each pair is a
        confirmed intersection (the Intersection program returned True).
        When the geometry is a triangle tessellation, ``prim_idx`` is mapped
        back to the owning data-point index and duplicate (query, owner)
        pairs are collapsed, matching what the AnyHit-based implementation in
        the paper would record.
        """
        bvh = self._require_accel()
        pts = ensure_points3d(np.atleast_2d(np.asarray(points, dtype=np.float64)))
        q_idx, p_idx, traversal = point_query_pairs(bvh, pts, chunk_size=self.chunk_size)

        stats = LaunchStats(num_rays=pts.shape[0], traversal=traversal)
        stats.intersection_calls = int(p_idx.size)
        if p_idx.size:
            hit = np.asarray(programs.intersection(q_idx, p_idx), dtype=bool)
        else:
            hit = np.zeros(0, dtype=bool)
        q_hit, p_hit = q_idx[hit], p_idx[hit]

        if self.is_triangle_mode:
            # Triangle hits must be routed through AnyHit to be recorded and
            # mapped back to the tessellated sphere's owner point.
            stats.anyhit_calls = int(q_hit.size)
            owners = self.geometry.owners[p_hit]
            keys = q_hit.astype(np.int64) * np.int64(self.num_owner_points()) + owners
            _, first = np.unique(keys, return_index=True)
            q_hit, p_hit = q_hit[first], owners[first]
        elif programs.anyhit is not None:
            stats.anyhit_calls = int(q_hit.size)
            programs.anyhit(q_hit, p_hit)

        if programs.miss is not None:
            missed = np.setdiff1d(np.arange(pts.shape[0]), q_hit, assume_unique=False)
            programs.miss(missed)

        stats.confirmed_hits = int(q_hit.size)
        self._charge_launch(stats)
        return q_hit, p_hit, stats

    def launch_csr_queries(
        self, points: np.ndarray, programs: ProgramGroup
    ) -> tuple[np.ndarray, np.ndarray, LaunchStats]:
        """Launch one ε-ray per point and return confirmed hits as a CSR adjacency.

        The zero-materialisation stage-2 launch: candidates are confirmed by
        the Intersection program chunk-by-chunk inside the traversal and the
        confirmed neighbour lists come back in canonical CSR form
        (``indptr``, ``indices``) — the full candidate pair set never exists
        in memory.  The charged operation counts are identical to a
        :meth:`launch_hit_queries` call over the same points (the traversal,
        candidate set and confirmed set are the same).

        Geometries that need per-hit AnyHit routing (triangle mode) or
        miss-program callbacks fall back to the materialising launch and
        convert, preserving those programs' once-per-launch semantics.
        """
        if self.is_triangle_mode or programs.anyhit is not None or programs.miss is not None:
            q_hit, p_hit, stats = self.launch_hit_queries(points, programs)
            indptr, indices = pairs_to_csr(
                q_hit, p_hit, np.atleast_2d(np.asarray(points)).shape[0]
            )
            return indptr, indices, stats

        bvh = self._require_accel()
        pts = ensure_points3d(np.atleast_2d(np.asarray(points, dtype=np.float64)))
        native = _native_sphere_query(bvh, pts, programs, collect=True)
        if native is not None:
            indptr, indices, traversal = native
        else:
            indptr, indices, traversal = point_query_csr(
                bvh, pts, programs.intersection, chunk_size=self.chunk_size
            )
        stats = LaunchStats(num_rays=pts.shape[0], traversal=traversal)
        stats.intersection_calls = traversal.candidates
        stats.confirmed_hits = traversal.confirmed
        self._charge_launch(stats)
        return indptr, indices, stats

    def launch_count_queries(
        self,
        points: np.ndarray,
        programs: ProgramGroup,
        *,
        min_count: int | None = None,
    ) -> tuple[np.ndarray, LaunchStats]:
        """Launch one ε-ray per point and count confirmed hits per query.

        This is the launch RT-DBSCAN's core-point identification stage uses:
        the Intersection program increments a per-ray counter and nothing is
        stored.  ``min_count`` enables the early-exit traversal used by the
        FDBSCAN baseline (never by RT-DBSCAN itself, per Section VI-B).
        """
        bvh = self._require_accel()
        pts = ensure_points3d(np.atleast_2d(np.asarray(points, dtype=np.float64)))

        if (
            min_count is None
            and not self.is_triangle_mode
            and programs.anyhit is None
        ):
            native = _native_sphere_query(bvh, pts, programs, collect=False)
            if native is not None:
                counts, traversal = native
                stats = LaunchStats(num_rays=pts.shape[0], traversal=traversal)
                stats.intersection_calls = traversal.candidates
                stats.confirmed_hits = traversal.confirmed
                self._charge_launch(stats)
                return counts, stats

        stats = LaunchStats(num_rays=pts.shape[0])
        anyhit_tally = {"calls": 0}

        def confirm(q: np.ndarray, p: np.ndarray) -> np.ndarray:
            hit = np.asarray(programs.intersection(q, p), dtype=bool)
            if self.is_triangle_mode or programs.anyhit is not None:
                anyhit_tally["calls"] += int(hit.sum())
            return hit

        counts, traversal = point_query_counts_early_exit(
            bvh, pts, confirm, min_count=min_count, chunk_size=self.chunk_size
        )
        stats.traversal = traversal
        stats.intersection_calls = traversal.candidates
        stats.anyhit_calls = anyhit_tally["calls"]
        stats.confirmed_hits = traversal.confirmed
        self._charge_launch(stats)

        if self.is_triangle_mode:
            # Counting triangle hits over-counts neighbours (a sphere is hit
            # through many triangles); the triangle-mode DBSCAN path uses
            # launch_hit_queries instead, so counts here are informational.
            pass
        return counts, stats

    # ------------------------------------------------------------------ #
    def num_owner_points(self) -> int:
        """Number of underlying data points behind the geometry."""
        if isinstance(self.geometry, TriangleGeometry):
            return int(self.geometry.owners.max()) + 1 if len(self.geometry) else 0
        return len(self.geometry)

    def release(self) -> None:
        """Free the device allocations owned by this pipeline."""
        self.device.memory.free("accel_structure")
        self.device.memory.free("primitive_buffers")
        self.bvh = None
