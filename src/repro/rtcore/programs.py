"""Pipeline program records.

The OptiX pipeline (Fig. 2 of the paper) is assembled from user programs:
RayGen generates rays, Intersection tests a ray against a custom primitive,
AnyHit records every hit, ClosestHit reports the nearest hit and Miss handles
rays that hit nothing.  BVH build and traversal are fixed-function and run on
the RT cores.  The simulated pipeline keeps the same decomposition: each
program is a plain Python callable with a documented vectorised signature, so
algorithms can inject their clustering logic exactly where the paper does —
inside the Intersection program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = [
    "IntersectionProgram",
    "AnyHitProgram",
    "ClosestHitProgram",
    "MissProgram",
    "RayGenProgram",
    "ProgramGroup",
    "sphere_intersection_program",
]

#: An Intersection program maps candidate ``(query_idx, prim_idx)`` arrays to
#: a boolean "hit" array.  It runs on the shader cores on behalf of the RT
#: pipeline, once per candidate produced by the hardware traversal.
IntersectionProgram = Callable[[np.ndarray, np.ndarray], np.ndarray]

#: An AnyHit program is invoked once per *confirmed* hit; it may carry out
#: side effects (e.g. appending to a hit list) and returns nothing.
AnyHitProgram = Callable[[np.ndarray, np.ndarray], None]

#: A ClosestHit program receives, per query, the primitive of the nearest
#: confirmed hit (or -1).
ClosestHitProgram = Callable[[np.ndarray, np.ndarray], None]

#: A Miss program receives the indices of queries with no confirmed hit.
MissProgram = Callable[[np.ndarray], None]

#: A RayGen program produces the query points / rays for a launch.
RayGenProgram = Callable[[], np.ndarray]


@dataclass
class ProgramGroup:
    """The set of user programs bound to a geometry for a launch.

    Only the Intersection program is mandatory for custom primitives; the
    paper explicitly disables AnyHit and ClosestHit to avoid their overhead
    (Section IV), so they default to ``None`` here as well.
    """

    intersection: IntersectionProgram
    anyhit: AnyHitProgram | None = None
    closesthit: ClosestHitProgram | None = None
    miss: MissProgram | None = None
    name: str = "program-group"
    payload: dict = field(default_factory=dict)


def sphere_intersection_program(
    centers: np.ndarray, radius: float, *, exclude_self: bool = False
) -> IntersectionProgram:
    """Build the paper's sphere Intersection program (Algorithm 2, lines 5–8).

    Confirms a candidate when the query point lies within ``radius`` of the
    candidate sphere's centre, optionally filtering the self-intersection
    (``q != s``) the way RT-DBSCAN does.

    Parameters
    ----------
    centers:
        ``(n, 3)`` sphere centres; query index ``i`` corresponds to the data
        point ``centers[i]`` so the self test is an index comparison.
    radius:
        The ε radius shared by all spheres.
    exclude_self:
        Whether to reject candidates where the query point *is* the sphere's
        own centre point.
    """
    centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
    r2 = float(radius) ** 2

    def program(query_idx: np.ndarray, prim_idx: np.ndarray) -> np.ndarray:
        d = centers[query_idx] - centers[prim_idx]
        hit = np.einsum("ij,ij->i", d, d) <= r2
        if exclude_self:
            hit &= query_idx != prim_idx
        return hit

    return program
