"""Crash-safe checkpoint store for streaming sessions.

A :class:`SnapshotStore` owns a state directory holding one checkpoint file
per tenant.  Each file is a one-line header followed by a UTF-8 JSON payload
(the engine snapshot wrapped with the tenant id and a save timestamp)::

    rt-dbscan-ckpt v1 crc32=1a2b3c4d len=8421\n
    {"tenant": ..., "saved_at": ..., "snapshot": {...}}

The header pins the format version, the payload byte length, and a CRC32 over
the payload bytes, so a torn or bit-rotted file is detected before any of it
is fed to :meth:`StreamingRTDBSCAN.restore`.  Writes are crash-safe: the
payload lands in a same-directory temp file, is flushed and fsynced, then
atomically renamed over the target — a crash at any point leaves either the
old checkpoint or the new one, never a hybrid.

Files that fail verification on load are moved to a ``quarantine/``
subdirectory (never deleted, never retried) and :class:`CorruptCheckpointError`
is raised; the caller treats the tenant as fresh.  Tenant ids map to
filenames by percent-encoding, so any id round-trips losslessly through
:meth:`tenants`.

The store fires the ``store.write`` / ``store.corrupt`` / ``store.read``
fault sites (see :mod:`repro.service.faults`) so chaos tests can model a full
disk or a torn write without monkeypatching.
"""

from __future__ import annotations

import json
import os
import time
import urllib.parse
import zlib
from pathlib import Path

from .faults import FaultInjector

__all__ = [
    "SnapshotStore",
    "CheckpointError",
    "CorruptCheckpointError",
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "verify_checkpoint_dir",
]

CHECKPOINT_MAGIC = "rt-dbscan-ckpt"
CHECKPOINT_VERSION = 1
_SUFFIX = ".ckpt"
_QUARANTINE = "quarantine"


class CheckpointError(RuntimeError):
    """A checkpoint could not be written or read."""


class CorruptCheckpointError(CheckpointError):
    """A checkpoint file failed integrity verification.

    ``path`` is the offending file; after :meth:`SnapshotStore.load`
    quarantines it, ``quarantined`` holds its new location.
    """

    def __init__(self, path: Path, reason: str, quarantined: Path | None = None):
        super().__init__(f"corrupt checkpoint {path}: {reason}")
        self.path = path
        self.reason = reason
        self.quarantined = quarantined


class SnapshotStore:
    """Atomic, checksummed, per-tenant checkpoint files under ``root``."""

    def __init__(self, root: str | Path, *, faults: FaultInjector | None = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.faults = faults if faults is not None else FaultInjector()

    # ------------------------------------------------------------------ paths

    def path_for(self, tenant: str) -> Path:
        return self.root / (urllib.parse.quote(tenant, safe="") + _SUFFIX)

    @staticmethod
    def tenant_of(path: Path) -> str:
        return urllib.parse.unquote(path.name[: -len(_SUFFIX)])

    def paths(self) -> list[Path]:
        return sorted(p for p in self.root.glob(f"*{_SUFFIX}") if p.is_file())

    def tenants(self) -> list[str]:
        return [self.tenant_of(p) for p in self.paths()]

    @property
    def quarantine_dir(self) -> Path:
        return self.root / _QUARANTINE

    # ------------------------------------------------------------------ write

    def save(self, tenant: str, snapshot: dict) -> Path:
        """Atomically persist ``snapshot`` for ``tenant``; returns the path.

        Raises :class:`CheckpointError` on I/O failure (including an armed
        ``store.write`` fault); the previous checkpoint, if any, survives.
        """
        record = {"tenant": tenant, "saved_at": time.time(), "snapshot": snapshot}
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        header = (
            f"{CHECKPOINT_MAGIC} v{CHECKPOINT_VERSION} "
            f"crc32={zlib.crc32(payload) & 0xFFFFFFFF:08x} len={len(payload)}\n"
        ).encode("ascii")
        path = self.path_for(tenant)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            self.faults.fire("store.write")
            with open(tmp, "wb") as fh:
                fh.write(header)
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            raise CheckpointError(f"failed to write checkpoint for {tenant!r}: {exc}") from exc
        finally:
            tmp.unlink(missing_ok=True)
        plan = self.faults.fire("store.corrupt")
        if plan is not None:
            _corrupt_file(path, plan.corrupt or "truncate")
        return path

    # ------------------------------------------------------------------- read

    def load(self, tenant: str) -> dict | None:
        """Return the verified record for ``tenant`` or ``None`` if absent.

        A file that fails verification is moved into ``quarantine/`` and
        :class:`CorruptCheckpointError` (with ``quarantined`` set) is raised.
        """
        path = self.path_for(tenant)
        if not path.exists():
            return None
        try:
            self.faults.fire("store.read")
            return self.verify(path)
        except CorruptCheckpointError as exc:
            exc.quarantined = self.quarantine(path)
            raise
        except OSError as exc:
            raise CheckpointError(f"failed to read checkpoint for {tenant!r}: {exc}") from exc

    def verify(self, path: Path) -> dict:
        """Verify header + checksum of ``path`` and return the decoded record.

        Pure read: never moves the file (``load`` adds quarantining on top).
        Raises :class:`CorruptCheckpointError` with the failure reason.
        """
        path = Path(path)
        with open(path, "rb") as fh:
            header = fh.readline(256)
            body = fh.read()
        fields = header.decode("ascii", errors="replace").split()
        if len(fields) != 4 or fields[0] != CHECKPOINT_MAGIC or not header.endswith(b"\n"):
            raise CorruptCheckpointError(path, "bad header")
        if fields[1] != f"v{CHECKPOINT_VERSION}":
            raise CorruptCheckpointError(path, f"unsupported version {fields[1]!r}")
        try:
            crc = int(fields[2].removeprefix("crc32="), 16)
            length = int(fields[3].removeprefix("len="))
        except ValueError:
            raise CorruptCheckpointError(path, "malformed header fields") from None
        if len(body) != length:
            raise CorruptCheckpointError(
                path, f"payload length {len(body)} != declared {length} (truncated write?)"
            )
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            raise CorruptCheckpointError(path, "crc32 mismatch")
        try:
            record = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CorruptCheckpointError(path, f"payload not valid JSON: {exc}") from None
        if not isinstance(record, dict) or "snapshot" not in record:
            raise CorruptCheckpointError(path, "payload missing snapshot section")
        return record

    # -------------------------------------------------------------- lifecycle

    def delete(self, tenant: str) -> bool:
        path = self.path_for(tenant)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    def quarantine(self, path: Path) -> Path:
        """Move a bad file into ``quarantine/`` (unique name, never clobbers)."""
        qdir = self.quarantine_dir
        qdir.mkdir(parents=True, exist_ok=True)
        dest = qdir / (path.name + ".corrupt")
        n = 1
        while dest.exists():
            dest = qdir / f"{path.name}.corrupt.{n}"
            n += 1
        os.replace(path, dest)
        return dest


def _corrupt_file(path: Path, mode: str) -> None:
    """Damage a finished checkpoint in place (fault injection only)."""
    data = path.read_bytes()
    if mode == "truncate":
        data = data[: max(1, len(data) // 2)]
    elif mode == "flip":
        mid = len(data) // 2
        data = data[:mid] + bytes([data[mid] ^ 0xFF]) + data[mid + 1 :]
    elif mode == "header":
        data = b"not-a-checkpoint\n" + data
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    path.write_bytes(data)


def verify_checkpoint_dir(root: str | Path, *, deep: bool = True) -> list[dict]:
    """Offline integrity sweep of a state directory (``--restore-check``).

    Returns one report dict per ``*.ckpt`` file: ``{"path", "tenant", "ok"}``
    plus either ``"error"`` or checkpoint details (window size, backend,
    saved_at).  With ``deep=True`` the engine-level snapshot schema is also
    validated via :meth:`StreamingRTDBSCAN.validate_snapshot`.  Never moves
    or modifies files.
    """
    from ..streaming.engine import StreamingRTDBSCAN

    store = SnapshotStore(root)
    reports: list[dict] = []
    for path in store.paths():
        report: dict = {"path": str(path), "tenant": store.tenant_of(path)}
        try:
            record = store.verify(path)
            snapshot = record["snapshot"]
            if deep:
                sec = StreamingRTDBSCAN.validate_snapshot(snapshot)
            else:
                sec = snapshot.get("engine", {}) if isinstance(snapshot, dict) else {}
            report.update(
                ok=True,
                saved_at=record.get("saved_at"),
                window_points=len(sec.get("points", [])),
                backend=sec.get("backend"),
            )
        except (CheckpointError, ValueError, KeyError, TypeError) as exc:
            report.update(ok=False, error=str(exc))
        reports.append(report)
    return reports
