"""Service configuration.

One frozen :class:`ServiceConfig` value describes everything a
:class:`~repro.service.service.ClusteringService` needs: the
:class:`~repro.api.spec.ClustererSpec` template every tenant session is
built from, the capacity and idle-eviction policy of the session pool, and
the micro-batching / backpressure budgets of the per-session request queues.
Keeping it declarative mirrors the rest of the API layer — a config can be
logged, serialised into benchmark records and rebuilt from CLI flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..api.spec import ClustererSpec

__all__ = ["ServiceConfig", "DEFAULT_SPEC"]

#: default session template: the streaming engine with a modest window.
DEFAULT_SPEC = ClustererSpec(algo="streaming-rt-dbscan", eps=0.3, min_pts=5)


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration for one multi-tenant clustering service.

    Parameters
    ----------
    spec:
        Clusterer template instantiated once per tenant session.  Must name
        an algorithm registered with ``supports_partial_fit=True`` (the
        default is ``streaming-rt-dbscan``); window/policy/etc. travel in
        ``spec.params``.
    max_sessions:
        Hard cap on concurrently live sessions.  When a new tenant arrives
        at capacity the manager evicts the least-recently-used *idle*
        session; if every session is busy the ingest is rejected with a
        retry hint instead (capacity backpressure).
    session_ttl_s:
        Idle sessions older than this are evicted by the sweeper (their
        engine's ``release()`` reclaims the slot-buffer scene).  ``None``
        disables TTL eviction.
    max_queue_chunks:
        Bound on a session's pending-chunk queue.  A tenant that outruns
        its budget gets a ``busy`` response carrying ``retry_after_s``
        (per-tenant backpressure) rather than unbounded memory growth.
    max_batch_chunks, max_batch_points:
        Micro-batching budgets: a session worker coalesces up to
        ``max_batch_chunks`` queued chunks (stopping early once the batch
        holds ``max_batch_points`` points) into **one** ``update()`` call.
        Coalescing is label-invariant — the engine's labelling depends only
        on arrival order, not chunk boundaries — so batching buys
        throughput without changing any tenant's output.
    sweep_interval_s:
        Cadence of the idle-eviction sweeper task.
    retry_after_s:
        Retry hint attached to ``busy`` responses.
    presize:
        Pre-size new sessions with
        :meth:`~repro.streaming.engine.StreamingRTDBSCAN.for_feed`, using
        the tenant's first chunk as the extent/density sample, so steady
        feeds never pay a growth-forced rebuild.  Only applies to the
        streaming engine; other session algorithms ignore it.
    latency_window:
        Number of recent per-update wall latencies kept per session for the
        p50/p99 stats.
    state_dir:
        Directory for durable session state.  When set, evicted idle
        sessions *spill* their engine snapshot to a checksummed checkpoint
        file instead of dropping the window, the tenant's next request
        transparently restores it, and a background task re-checkpoints
        live sessions every ``checkpoint_interval_s`` so a crashed server
        restarts warm.  ``None`` (the default) keeps the pre-durability
        behaviour: eviction drops the window.
    checkpoint_interval_s:
        Cadence of the background checkpoint task (only meaningful with
        ``state_dir``).  ``None`` disables periodic checkpointing while
        keeping spill-on-evict and restore-on-demand.
    """

    spec: ClustererSpec = field(default_factory=lambda: DEFAULT_SPEC)
    max_sessions: int = 64
    session_ttl_s: float | None = 300.0
    max_queue_chunks: int = 64
    max_batch_chunks: int = 8
    max_batch_points: int = 65536
    sweep_interval_s: float = 0.5
    retry_after_s: float = 0.05
    presize: bool = True
    latency_window: int = 512
    state_dir: str | None = None
    checkpoint_interval_s: float | None = 30.0

    def __post_init__(self) -> None:
        for name in ("max_sessions", "max_queue_chunks", "max_batch_chunks",
                     "max_batch_points", "latency_window"):
            value = getattr(self, name)
            if int(value) != value or value < 1:
                raise ValueError(f"{name} must be a positive integer, got {value}")
            object.__setattr__(self, name, int(value))
        if self.session_ttl_s is not None and self.session_ttl_s <= 0:
            raise ValueError(f"session_ttl_s must be positive or None, got {self.session_ttl_s}")
        if self.sweep_interval_s <= 0:
            raise ValueError(f"sweep_interval_s must be positive, got {self.sweep_interval_s}")
        if self.retry_after_s < 0:
            raise ValueError(f"retry_after_s must be non-negative, got {self.retry_after_s}")
        if self.checkpoint_interval_s is not None and self.checkpoint_interval_s <= 0:
            raise ValueError(
                f"checkpoint_interval_s must be positive or None, got {self.checkpoint_interval_s}"
            )
        if self.state_dir is not None:
            object.__setattr__(self, "state_dir", str(self.state_dir))

    def as_dict(self) -> dict:
        return {
            "spec": self.spec.as_dict(),
            "max_sessions": self.max_sessions,
            "session_ttl_s": self.session_ttl_s,
            "max_queue_chunks": self.max_queue_chunks,
            "max_batch_chunks": self.max_batch_chunks,
            "max_batch_points": self.max_batch_points,
            "sweep_interval_s": self.sweep_interval_s,
            "retry_after_s": self.retry_after_s,
            "presize": self.presize,
            "latency_window": self.latency_window,
            "state_dir": self.state_dir,
            "checkpoint_interval_s": self.checkpoint_interval_s,
        }
