"""Typed request/response protocol of the clustering service.

The same five-plus-one operations are served in-process (``await
service.submit(request)``) and over the JSON-lines TCP front-end:

=============== ======================================================
op              effect
=============== ======================================================
``ingest``      enqueue one chunk of points for a tenant's session
                (creates the session on first touch); replies as soon
                as the chunk is *accepted*, so queued chunks coalesce
                into micro-batches behind the ack
``query_labels``drain the tenant's queue, then return the current
                window labelling (labels, arrivals, core mask)
``snapshot``    drain, then return the engine's full snapshot record
``evict``       drain, tear the session down (``release()`` the scene)
``stats``       service-level and per-tenant metrics
``metrics``     service counters in Prometheus text exposition format
                (scrape-friendly SLO metrics)
``checkpoint``  drain, then checkpoint one tenant (or, with no tenant,
                every live session) to the service's state dir
``shutdown``    drain everything, tear all sessions down, stop the
                server loop (admin op for the TCP front-end)
=============== ======================================================

Requests and responses are small frozen/plain dataclasses with
``as_dict``/``from_dict`` round-trips; the wire format is one JSON object
per line (UTF-8, ``\\n``-terminated), so any stdlib socket client can drive
the service.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "OPS",
    "Request",
    "Response",
    "ProtocolError",
    "encode_line",
    "decode_line",
]

#: every operation the service understands.
OPS = ("ingest", "query_labels", "snapshot", "evict", "stats", "metrics",
       "checkpoint", "shutdown")

#: ops that address one tenant's session (and therefore require ``tenant``).
_TENANT_OPS = frozenset({"ingest", "query_labels", "snapshot", "evict"})


class ProtocolError(ValueError):
    """A structurally invalid request (unknown op, missing fields, bad points)."""


@dataclass(frozen=True)
class Request:
    """One operation addressed to the service.

    ``points`` is only meaningful (and required) for ``ingest``; ``tenant``
    is required for every per-session op.  ``request_id`` is an opaque
    client-chosen correlation token echoed back on the response.
    """

    op: str
    tenant: str | None = None
    points: np.ndarray | None = None
    request_id: int | str | None = None

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ProtocolError(f"unknown op {self.op!r}; valid ops: {list(OPS)}")
        if self.op in _TENANT_OPS:
            if not self.tenant or not isinstance(self.tenant, str):
                raise ProtocolError(f"op {self.op!r} requires a tenant id")
        if self.op == "ingest":
            if self.points is None:
                raise ProtocolError("op 'ingest' requires points")
            pts = np.asarray(self.points, dtype=np.float64)
            if pts.ndim != 2 or pts.shape[0] == 0 or pts.shape[1] not in (2, 3):
                raise ProtocolError(
                    "ingest points must be a non-empty (n, 2) or (n, 3) array, "
                    f"got shape {pts.shape}"
                )
            if not np.isfinite(pts).all():
                raise ProtocolError("ingest points must be finite")
            object.__setattr__(self, "points", pts)
        elif self.points is not None:
            raise ProtocolError(f"op {self.op!r} does not accept points")

    # ------------------------------------------------------------------ #
    @classmethod
    def ingest(cls, tenant: str, points, *, request_id=None) -> "Request":
        return cls(op="ingest", tenant=tenant, points=points, request_id=request_id)

    @classmethod
    def query_labels(cls, tenant: str, *, request_id=None) -> "Request":
        return cls(op="query_labels", tenant=tenant, request_id=request_id)

    @classmethod
    def snapshot(cls, tenant: str, *, request_id=None) -> "Request":
        return cls(op="snapshot", tenant=tenant, request_id=request_id)

    @classmethod
    def evict(cls, tenant: str, *, request_id=None) -> "Request":
        return cls(op="evict", tenant=tenant, request_id=request_id)

    @classmethod
    def stats(cls, *, request_id=None) -> "Request":
        return cls(op="stats", request_id=request_id)

    @classmethod
    def metrics(cls, *, request_id=None) -> "Request":
        return cls(op="metrics", request_id=request_id)

    @classmethod
    def checkpoint(cls, tenant: str | None = None, *, request_id=None) -> "Request":
        return cls(op="checkpoint", tenant=tenant, request_id=request_id)

    @classmethod
    def shutdown(cls, *, request_id=None) -> "Request":
        return cls(op="shutdown", request_id=request_id)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, payload: dict) -> "Request":
        if not isinstance(payload, dict):
            raise ProtocolError(f"request must be a JSON object, got {type(payload).__name__}")
        unknown = set(payload) - {"op", "tenant", "points", "request_id"}
        if unknown:
            raise ProtocolError(f"unknown request fields {sorted(unknown)}")
        if "op" not in payload:
            raise ProtocolError("request is missing the 'op' field")
        return cls(
            op=payload["op"],
            tenant=payload.get("tenant"),
            points=payload.get("points"),
            request_id=payload.get("request_id"),
        )

    def as_dict(self) -> dict:
        payload: dict = {"op": self.op}
        if self.tenant is not None:
            payload["tenant"] = self.tenant
        if self.points is not None:
            payload["points"] = np.asarray(self.points, dtype=np.float64).tolist()
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        return payload


@dataclass
class Response:
    """Outcome of one request.

    ``status`` is ``"ok"``, ``"busy"`` (backpressure: retry after
    ``retry_after_s`` seconds) or ``"error"`` (``error`` carries the
    message).  ``body`` is the op-specific payload, already JSON-friendly.
    """

    status: str
    op: str
    tenant: str | None = None
    body: dict = field(default_factory=dict)
    error: str | None = None
    retry_after_s: float | None = None
    request_id: int | str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def busy(self) -> bool:
        return self.status == "busy"

    @classmethod
    def from_dict(cls, payload: dict) -> "Response":
        return cls(
            status=payload["status"],
            op=payload.get("op", ""),
            tenant=payload.get("tenant"),
            body=payload.get("body", {}) or {},
            error=payload.get("error"),
            retry_after_s=payload.get("retry_after_s"),
            request_id=payload.get("request_id"),
        )

    def as_dict(self) -> dict:
        payload: dict = {"status": self.status, "op": self.op}
        if self.tenant is not None:
            payload["tenant"] = self.tenant
        if self.body:
            payload["body"] = self.body
        if self.error is not None:
            payload["error"] = self.error
        if self.retry_after_s is not None:
            payload["retry_after_s"] = self.retry_after_s
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        return payload


# --------------------------------------------------------------------------- #
# JSON-lines framing (shared by the TCP server and its clients).
# --------------------------------------------------------------------------- #
def encode_line(payload: dict) -> bytes:
    """Encode one protocol object as a ``\\n``-terminated JSON line."""
    return json.dumps(payload, separators=(",", ":"), default=float).encode() + b"\n"


def decode_line(line: bytes | str) -> dict:
    """Decode one JSON line; raises :class:`ProtocolError` on malformed input."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON line: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("protocol line must decode to a JSON object")
    return payload
