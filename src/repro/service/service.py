"""The asyncio multi-tenant clustering service.

:class:`ClusteringService` multiplexes many concurrent streaming scenes —
one :class:`~repro.service.session.Session` per tenant/feed — behind the
typed request protocol:

* ``ingest`` acks as soon as the chunk is accepted into the tenant's bounded
  queue; a per-session worker coroutine coalesces queued chunks into
  micro-batched ``update()`` calls, so a bursty tenant pays one scene commit
  per batch instead of one per chunk (the labelling is invariant to the
  coalescing — only arrival order matters);
* a full queue (or a full session pool with no idle victim) answers ``busy``
  with a ``retry_after_s`` hint — backpressure instead of unbounded memory;
* reads (``query_labels`` / ``snapshot``) drain the tenant's queue first, so
  they always observe every previously-acked chunk;
* a sweeper task evicts sessions idle past the TTL, and every teardown path
  (TTL, LRU capacity eviction, explicit ``evict``, shutdown) funnels through
  the engine's idempotent ``release()`` exactly once, reclaiming the
  slot-buffer scene.

The service is usable in-process::

    async with ClusteringService(config) as service:
        resp = await service.submit(Request.ingest("tenant-a", chunk))

or over the JSON-lines TCP front-end in :mod:`repro.service.tcp`.
"""

from __future__ import annotations

import asyncio
import logging
import time
from typing import Callable

from .config import ServiceConfig
from .protocol import Request, Response
from .session import CapacityError, Session, SessionError, SessionManager

__all__ = ["ClusteringService"]

logger = logging.getLogger(__name__)


class ClusteringService:
    """Session-pooled, micro-batching front door to the streaming engines.

    Parameters
    ----------
    config:
        Pool/batching/backpressure policy plus the per-tenant clusterer
        template (default :data:`~repro.service.config.DEFAULT_SPEC`).
    clock:
        Monotonic time source; injectable so TTL-eviction tests can drive
        time explicitly.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or ServiceConfig()
        self._clock = clock
        self.sessions = SessionManager(self.config, clock=clock)
        self.metrics = self.sessions.metrics
        self._workers: dict[str, asyncio.Task] = {}
        self._sweeper: asyncio.Task | None = None
        self._started = False
        self._closed = False
        #: set once a ``shutdown`` request lands; the TCP server awaits it.
        self.shutdown_event = asyncio.Event()

    # ------------------------------------------------------------------ #
    async def start(self) -> "ClusteringService":
        """Start the background sweeper (idempotent)."""
        if not self._started:
            self._started = True
            self.metrics.started_at = self._clock()
            if self.config.session_ttl_s is not None:
                self._sweeper = asyncio.create_task(self._sweep_loop())
        return self

    async def __aenter__(self) -> "ClusteringService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        """Drain every session, tear all of them down, stop the sweeper."""
        if self._closed:
            return
        self._closed = True
        if self._sweeper is not None:
            self._sweeper.cancel()
            try:
                await self._sweeper
            except asyncio.CancelledError:
                pass
            self._sweeper = None
        for tenant in self.sessions.tenants():
            session = self.sessions.get(tenant, touch=False)
            if session is not None:
                await session.drain()
        for tenant in list(self._workers):
            await self._stop_worker(tenant)
        self.sessions.close_all()
        self.shutdown_event.set()

    # ------------------------------------------------------------------ #
    async def _sweep_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.sweep_interval_s)
            try:
                await self.sweep()
            except Exception:
                # A failed pass must not kill the sweeper: TTL eviction would
                # be silently disabled for the rest of the service's life.
                logger.exception("TTL sweep pass failed; sweeper continues")

    async def sweep(self) -> list[str]:
        """One TTL-eviction pass; returns the evicted tenant ids."""
        evicted = self.sessions.sweep(self._clock())
        for session in evicted:
            await self._stop_worker(session.tenant)
        return [s.tenant for s in evicted]

    async def _stop_worker(self, tenant: str) -> None:
        task = self._workers.pop(tenant, None)
        if task is None:
            return
        session = self.sessions.get(tenant, touch=False)
        if session is not None:
            await session.stop()
        elif not task.done():
            # Session already gone (evicted): cancel the orphaned worker.
            task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass
        except Exception:
            # A worker that died on its own must not re-raise here — that
            # would propagate through sweep() and kill the sweeper task.
            logger.exception("worker for tenant %r exited with an error", tenant)

    # ------------------------------------------------------------------ #
    async def submit(self, request: Request | dict) -> Response:
        """Serve one request; never raises for protocol-level failures."""
        if isinstance(request, dict):
            try:
                request = Request.from_dict(request)
            except Exception as exc:
                self.metrics.observe_error()
                return Response(status="error", op=str(request.get("op", "?")),
                                error=str(exc), request_id=request.get("request_id"))
        if self._closed:
            return self._error(request, "service is shut down")
        await self.start()
        self.metrics.observe_request(request.op)
        handler = getattr(self, f"_op_{request.op}")
        try:
            return await handler(request)
        except Exception as exc:  # defensive: one bad request must not kill the loop
            self.metrics.observe_error()
            return self._error(request, f"{type(exc).__name__}: {exc}")

    def _error(self, request: Request, message: str) -> Response:
        return Response(status="error", op=request.op, tenant=request.tenant,
                        error=message, request_id=request.request_id)

    def _busy(self, request: Request, message: str) -> Response:
        return Response(
            status="busy", op=request.op, tenant=request.tenant, error=message,
            retry_after_s=self.config.retry_after_s, request_id=request.request_id,
        )

    def _require_session(self, request: Request) -> Session | None:
        return self.sessions.get(request.tenant)

    def _session_failed(self, request: Request, session: Session) -> Response:
        return self._error(
            request,
            f"session failed ({session.error}); evict tenant "
            f"{request.tenant!r} to reset it",
        )

    # ------------------------------------------------------------------ #
    async def _op_ingest(self, request: Request) -> Response:
        try:
            session, created = self.sessions.get_or_create(
                request.tenant, first_chunk=request.points
            )
        except CapacityError as exc:
            self.metrics.observe_reject()
            return self._busy(request, str(exc))
        if created:
            # Creating at capacity may have LRU-evicted an idle session from
            # the pool; reap any worker whose session is gone before the new
            # one starts.
            for stale in [t for t in self._workers if t not in self.sessions]:
                await self._stop_worker(stale)
            self._workers[request.tenant] = asyncio.create_task(session.run())
        try:
            accepted = await session.enqueue(request.points)
        except SessionError as exc:
            self.metrics.observe_error()
            return self._error(request, str(exc))
        if not accepted:
            self.metrics.observe_reject()
            return self._busy(
                request,
                f"queue full ({self.config.max_queue_chunks} chunks pending)",
            )
        return Response(
            status="ok", op="ingest", tenant=request.tenant,
            body={
                "accepted_points": int(request.points.shape[0]),
                "session_created": created,
                "queue_depth": session.queue_depth,
            },
            request_id=request.request_id,
        )

    async def _op_query_labels(self, request: Request) -> Response:
        session = self._require_session(request)
        if session is None:
            return self._error(request, f"unknown tenant {request.tenant!r}")
        await session.drain()
        if session.error is not None:
            return self._session_failed(request, session)
        result = session.engine.result()
        # Streaming-capable algorithms other than the RT-DBSCAN engine may
        # not export window arrivals; degrade to null rather than KeyError.
        arrivals = result.extra.get("window_arrivals") if result.extra else None
        body = {
            "labels": result.labels.tolist(),
            "core_mask": result.core_mask.tolist(),
            "window_arrivals": arrivals.tolist() if arrivals is not None else None,
            "num_clusters": int(result.num_clusters),
            "num_noise": int(result.num_noise),
            "window_size": int(result.labels.shape[0]),
        }
        return Response(status="ok", op="query_labels", tenant=request.tenant,
                        body=body, request_id=request.request_id)

    async def _op_snapshot(self, request: Request) -> Response:
        session = self._require_session(request)
        if session is None:
            return self._error(request, f"unknown tenant {request.tenant!r}")
        await session.drain()
        if session.error is not None:
            return self._session_failed(request, session)
        snapshot = getattr(session.engine, "snapshot", None)
        if snapshot is None:
            return self._error(
                request,
                f"algorithm {type(session.engine).__name__} does not support snapshot",
            )
        return Response(status="ok", op="snapshot", tenant=request.tenant,
                        body=snapshot(), request_id=request.request_id)

    async def _op_evict(self, request: Request) -> Response:
        session = self.sessions.get(request.tenant, touch=False)
        if session is None:
            return Response(status="ok", op="evict", tenant=request.tenant,
                            body={"evicted": False}, request_id=request.request_id)
        await session.drain()
        await self._stop_worker(request.tenant)
        self.sessions.evict(request.tenant, reason="explicit")
        return Response(status="ok", op="evict", tenant=request.tenant,
                        body={"evicted": True}, request_id=request.request_id)

    async def _op_stats(self, request: Request) -> Response:
        now = self._clock()
        body = {
            "service": self.metrics.as_dict(now),
            "sessions": self.sessions.stats(now),
            "config": self.config.as_dict(),
        }
        return Response(status="ok", op="stats", body=body,
                        request_id=request.request_id)

    async def _op_shutdown(self, request: Request) -> Response:
        await self.aclose()
        return Response(status="ok", op="shutdown",
                        body={"sessions_evicted": self.metrics.total_evictions},
                        request_id=request.request_id)
