"""The asyncio multi-tenant clustering service.

:class:`ClusteringService` multiplexes many concurrent streaming scenes —
one :class:`~repro.service.session.Session` per tenant/feed — behind the
typed request protocol:

* ``ingest`` acks as soon as the chunk is accepted into the tenant's bounded
  queue; a per-session worker coroutine coalesces queued chunks into
  micro-batched ``update()`` calls, so a bursty tenant pays one scene commit
  per batch instead of one per chunk (the labelling is invariant to the
  coalescing — only arrival order matters);
* a full queue (or a full session pool with no idle victim) answers ``busy``
  with a ``retry_after_s`` hint — backpressure instead of unbounded memory;
* reads (``query_labels`` / ``snapshot``) drain the tenant's queue first, so
  they always observe every previously-acked chunk;
* a sweeper task evicts sessions idle past the TTL, and every teardown path
  (TTL, LRU capacity eviction, explicit ``evict``, shutdown) funnels through
  the engine's idempotent ``release()`` exactly once, reclaiming the
  slot-buffer scene.

The service is usable in-process::

    async with ClusteringService(config) as service:
        resp = await service.submit(Request.ingest("tenant-a", chunk))

or over the JSON-lines TCP front-end in :mod:`repro.service.tcp`.
"""

from __future__ import annotations

import asyncio
import logging
import time
from typing import Callable

from .config import ServiceConfig
from .faults import FaultInjector
from .protocol import Request, Response
from .session import CapacityError, Session, SessionError, SessionManager
from .store import CheckpointError, SnapshotStore

__all__ = ["ClusteringService"]

logger = logging.getLogger(__name__)


class ClusteringService:
    """Session-pooled, micro-batching front door to the streaming engines.

    Parameters
    ----------
    config:
        Pool/batching/backpressure policy plus the per-tenant clusterer
        template (default :data:`~repro.service.config.DEFAULT_SPEC`).
    clock:
        Monotonic time source; injectable so TTL-eviction tests can drive
        time explicitly.
    faults:
        Optional :class:`~repro.service.faults.FaultInjector` shared with
        the session workers, the sweeper and the checkpoint store, so chaos
        tests can arm deterministic failures on the real code paths.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        faults: FaultInjector | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self._clock = clock
        self.faults = faults
        self.store = (
            SnapshotStore(self.config.state_dir, faults=faults)
            if self.config.state_dir is not None
            else None
        )
        self.sessions = SessionManager(self.config, clock=clock,
                                       store=self.store, faults=faults)
        self.metrics = self.sessions.metrics
        self._workers: dict[str, asyncio.Task] = {}
        self._sweeper: asyncio.Task | None = None
        self._checkpointer: asyncio.Task | None = None
        self._started = False
        self._closed = False
        #: set once a ``shutdown`` request lands; the TCP server awaits it.
        self.shutdown_event = asyncio.Event()

    # ------------------------------------------------------------------ #
    async def start(self) -> "ClusteringService":
        """Start the background sweeper and checkpointer (idempotent)."""
        if not self._started:
            self._started = True
            self.metrics.started_at = self._clock()
            if self.config.session_ttl_s is not None:
                self._sweeper = asyncio.create_task(self._sweep_loop())
            if self.store is not None and self.config.checkpoint_interval_s is not None:
                self._checkpointer = asyncio.create_task(self._checkpoint_loop())
        return self

    async def __aenter__(self) -> "ClusteringService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        """Drain every session, tear all of them down, stop the sweeper."""
        if self._closed:
            return
        self._closed = True
        for task_attr in ("_sweeper", "_checkpointer"):
            task = getattr(self, task_attr)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                setattr(self, task_attr, None)
        for tenant in self.sessions.tenants():
            session = self.sessions.get(tenant, touch=False)
            if session is not None:
                await session.drain()
        for tenant in list(self._workers):
            await self._stop_worker(tenant)
        self.sessions.close_all()
        self.shutdown_event.set()

    # ------------------------------------------------------------------ #
    async def _sweep_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.sweep_interval_s)
            try:
                await self.sweep()
            except Exception:
                # A failed pass must not kill the sweeper: TTL eviction would
                # be silently disabled for the rest of the service's life.
                logger.exception("TTL sweep pass failed; sweeper continues")

    async def sweep(self) -> list[str]:
        """One TTL-eviction pass; returns the evicted tenant ids."""
        evicted = self.sessions.sweep(self._clock())
        for session in evicted:
            await self._stop_worker(session.tenant)
        return [s.tenant for s in evicted]

    async def _checkpoint_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.checkpoint_interval_s)
            try:
                await self.checkpoint()
            except Exception:
                # A failed pass must not kill the checkpointer: the server
                # would silently stop persisting state for the rest of its
                # life.
                logger.exception("checkpoint pass failed; checkpointer continues")

    async def checkpoint(self, tenant: str | None = None, *, drain: bool = False) -> dict:
        """Checkpoint live sessions to the state dir; returns tenant → outcome.

        The periodic loop calls this without draining — an engine update is
        synchronous with respect to the event loop, so a snapshot taken
        between updates is always consistent (it just may not include
        still-queued chunks).  The ``checkpoint`` admin op passes
        ``drain=True`` so every acked chunk is folded in first.
        """
        if self.store is None:
            return {}
        tenants = [tenant] if tenant is not None else self.sessions.tenants()
        outcome: dict[str, str] = {}
        for name in tenants:
            session = self.sessions.get(name, touch=False)
            if session is None:
                outcome[name] = "unknown"
                continue
            if drain:
                await session.drain()
            if session.error is not None:
                outcome[name] = "failed-session"
                continue
            snapshot = getattr(session.engine, "snapshot", None)
            if snapshot is None:
                outcome[name] = "unsupported"
                continue
            t0 = time.perf_counter()
            try:
                self.store.save(name, snapshot())
            except CheckpointError as exc:
                logger.warning("checkpoint for tenant %r failed: %s", name, exc)
                self.metrics.observe_checkpoint_failure()
                outcome[name] = f"error: {exc}"
                continue
            self.metrics.observe_checkpoint(time.perf_counter() - t0)
            outcome[name] = "written"
        return outcome

    async def _stop_worker(self, tenant: str) -> None:
        task = self._workers.pop(tenant, None)
        if task is None:
            return
        session = self.sessions.get(tenant, touch=False)
        if session is not None:
            await session.stop()
        elif not task.done():
            # Session already gone (evicted): cancel the orphaned worker.
            task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass
        except Exception:
            # A worker that died on its own must not re-raise here — that
            # would propagate through sweep() and kill the sweeper task.
            logger.exception("worker for tenant %r exited with an error", tenant)

    # ------------------------------------------------------------------ #
    async def submit(self, request: Request | dict) -> Response:
        """Serve one request; never raises for protocol-level failures."""
        if isinstance(request, dict):
            try:
                request = Request.from_dict(request)
            except Exception as exc:
                self.metrics.observe_error()
                return Response(status="error", op=str(request.get("op", "?")),
                                error=str(exc), request_id=request.get("request_id"))
        if self._closed:
            return self._error(request, "service is shut down")
        await self.start()
        self.metrics.observe_request(request.op)
        handler = getattr(self, f"_op_{request.op}")
        try:
            return await handler(request)
        except Exception as exc:  # defensive: one bad request must not kill the loop
            self.metrics.observe_error()
            return self._error(request, f"{type(exc).__name__}: {exc}")

    def _error(self, request: Request, message: str) -> Response:
        return Response(status="error", op=request.op, tenant=request.tenant,
                        error=message, request_id=request.request_id)

    def _busy(self, request: Request, message: str) -> Response:
        return Response(
            status="busy", op=request.op, tenant=request.tenant, error=message,
            retry_after_s=self.config.retry_after_s, request_id=request.request_id,
        )

    async def _start_worker(self, tenant: str, session: Session) -> None:
        """Launch the session's worker, reaping workers of evicted sessions.

        Creating (or restoring) at capacity may have LRU-evicted an idle
        session from the pool; reap any worker whose session is gone before
        the new one starts.
        """
        for stale in [t for t in self._workers if t not in self.sessions]:
            await self._stop_worker(stale)
        self._workers[tenant] = asyncio.create_task(session.run())

    async def _lookup_session(self, request: Request) -> Session | Response:
        """The tenant's live session, restoring a spilled one on demand.

        Returns the session, or the Response to send instead: ``busy`` when
        a restore needs a pool slot and none is free, ``error`` when the
        tenant has neither a live session nor a usable checkpoint.
        """
        session = self.sessions.get(request.tenant)
        if session is not None:
            return session
        try:
            session = self.sessions.restore_session(request.tenant)
        except CapacityError as exc:
            self.metrics.observe_reject()
            return self._busy(request, str(exc))
        if session is None:
            return self._error(request, f"unknown tenant {request.tenant!r}")
        await self._start_worker(request.tenant, session)
        return session

    def _session_failed(self, request: Request, session: Session) -> Response:
        return self._error(
            request,
            f"session failed ({session.error}); evict tenant "
            f"{request.tenant!r} to reset it",
        )

    # ------------------------------------------------------------------ #
    async def _op_ingest(self, request: Request) -> Response:
        try:
            session, created = self.sessions.get_or_create(
                request.tenant, first_chunk=request.points
            )
        except CapacityError as exc:
            self.metrics.observe_reject()
            return self._busy(request, str(exc))
        if created:
            await self._start_worker(request.tenant, session)
        try:
            accepted = await session.enqueue(request.points)
        except SessionError as exc:
            self.metrics.observe_error()
            return self._error(request, str(exc))
        if not accepted:
            self.metrics.observe_reject()
            return self._busy(
                request,
                f"queue full ({self.config.max_queue_chunks} chunks pending)",
            )
        return Response(
            status="ok", op="ingest", tenant=request.tenant,
            body={
                "accepted_points": int(request.points.shape[0]),
                "session_created": created,
                "session_restored": session.restored and created,
                "queue_depth": session.queue_depth,
            },
            request_id=request.request_id,
        )

    async def _op_query_labels(self, request: Request) -> Response:
        session = await self._lookup_session(request)
        if isinstance(session, Response):
            return session
        await session.drain()
        if session.error is not None:
            return self._session_failed(request, session)
        result = session.engine.result()
        # Streaming-capable algorithms other than the RT-DBSCAN engine may
        # not export window arrivals; degrade to null rather than KeyError.
        arrivals = result.extra.get("window_arrivals") if result.extra else None
        body = {
            "labels": result.labels.tolist(),
            "core_mask": result.core_mask.tolist(),
            "window_arrivals": arrivals.tolist() if arrivals is not None else None,
            "num_clusters": int(result.num_clusters),
            "num_noise": int(result.num_noise),
            "window_size": int(result.labels.shape[0]),
        }
        return Response(status="ok", op="query_labels", tenant=request.tenant,
                        body=body, request_id=request.request_id)

    async def _op_snapshot(self, request: Request) -> Response:
        session = await self._lookup_session(request)
        if isinstance(session, Response):
            return session
        await session.drain()
        if session.error is not None:
            return self._session_failed(request, session)
        snapshot = getattr(session.engine, "snapshot", None)
        if snapshot is None:
            return self._error(
                request,
                f"algorithm {type(session.engine).__name__} does not support snapshot",
            )
        return Response(status="ok", op="snapshot", tenant=request.tenant,
                        body=snapshot(), request_id=request.request_id)

    async def _op_evict(self, request: Request) -> Response:
        # An explicit evict is a tenant reset: the live session (if any) is
        # torn down *and* the tenant's spilled checkpoint is deleted, so the
        # next request starts genuinely fresh.
        checkpoint_deleted = (
            self.store.delete(request.tenant) if self.store is not None else False
        )
        session = self.sessions.get(request.tenant, touch=False)
        if session is None:
            return Response(
                status="ok", op="evict", tenant=request.tenant,
                body={"evicted": False, "checkpoint_deleted": checkpoint_deleted},
                request_id=request.request_id,
            )
        await session.drain()
        await self._stop_worker(request.tenant)
        self.sessions.evict(request.tenant, reason="explicit")
        return Response(
            status="ok", op="evict", tenant=request.tenant,
            body={"evicted": True, "checkpoint_deleted": checkpoint_deleted},
            request_id=request.request_id,
        )

    async def _op_stats(self, request: Request) -> Response:
        now = self._clock()
        body = {
            "service": self.metrics.as_dict(now),
            "sessions": self.sessions.stats(now),
            "config": self.config.as_dict(),
        }
        if self.store is not None:
            body["store"] = {
                "state_dir": str(self.store.root),
                "checkpoints": len(self.store.paths()),
                "quarantined": (
                    len(list(self.store.quarantine_dir.iterdir()))
                    if self.store.quarantine_dir.exists() else 0
                ),
            }
        return Response(status="ok", op="stats", body=body,
                        request_id=request.request_id)

    async def _op_metrics(self, request: Request) -> Response:
        text = self.metrics.render_prometheus(
            self._clock(), num_sessions=len(self.sessions)
        )
        return Response(
            status="ok", op="metrics",
            body={"content_type": "text/plain; version=0.0.4", "text": text},
            request_id=request.request_id,
        )

    async def _op_checkpoint(self, request: Request) -> Response:
        if self.store is None:
            return self._error(
                request, "service has no state_dir; checkpointing is disabled"
            )
        outcome = await self.checkpoint(request.tenant, drain=True)
        return Response(
            status="ok", op="checkpoint", tenant=request.tenant,
            body={"outcome": outcome, "state_dir": str(self.store.root)},
            request_id=request.request_id,
        )

    async def _op_shutdown(self, request: Request) -> Response:
        await self.aclose()
        return Response(status="ok", op="shutdown",
                        body={"sessions_evicted": self.metrics.total_evictions},
                        request_id=request.request_id)
