"""Deterministic fault injection for the service layer.

Chaos tests are only worth running when they drive the *real* code paths, so
instead of monkeypatching internals, the session worker, the TTL sweeper and
the checkpoint store each call :meth:`FaultInjector.fire` at a named fault
point on their hot path.  A test (or a chaos CI job) arms a
:class:`FaultPlan` per site — "the 3rd engine update raises", "every store
write fails with ENOSPC", "the next checkpoint is torn mid-write" — and the
production code reacts exactly as it would to the organic failure.

Plans are counter-driven (``after`` passes skipped, then ``times`` firings),
so a fixed test scenario injects the same faults at the same points on every
run — no randomness, no timing races.

Fault sites wired into the service:

=================== =====================================================
site                effect when armed
=================== =====================================================
``session.update``  fires inside the session worker just before the
                    engine update: an armed error fails the session (the
                    worker-crash path), an armed ``delay_s`` stalls the
                    update (the slow-update / client-timeout path)
``sweep``           fires at the top of a TTL sweep pass (the sweeper
                    must survive and keep sweeping)
``store.write``     fires before a checkpoint write: an armed ``OSError``
                    models a full / read-only disk
``store.corrupt``   fires after a checkpoint write lands: the finished
                    file is truncated or bit-flipped (a torn write the
                    next load must quarantine)
``store.read``      fires before a checkpoint read (restore-path I/O
                    failures)
=================== =====================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["FaultInjector", "FaultPlan", "InjectedFault", "FAULT_SITES"]

#: every fault point the service layer calls into (see the table above).
FAULT_SITES = (
    "session.update",
    "sweep",
    "store.write",
    "store.corrupt",
    "store.read",
)


class InjectedFault(RuntimeError):
    """The default exception raised by an armed fault point."""


@dataclass
class FaultPlan:
    """One armed fault: when it triggers and what it does.

    ``after`` passes through the site are let through untouched, then the
    plan fires on the next ``times`` passes (``times=None`` keeps firing
    forever).  A firing sleeps ``delay_s`` (if set), then raises ``error``
    (if set); ``corrupt`` is interpreted by the checkpoint store
    (``"truncate"`` / ``"flip"`` / ``"header"``).
    """

    site: str
    error: Exception | None = None
    delay_s: float = 0.0
    times: int | None = 1
    after: int = 0
    corrupt: str | None = None
    calls: int = 0
    fired: int = 0

    @property
    def exhausted(self) -> bool:
        return self.times is not None and self.fired >= self.times


@dataclass
class FaultInjector:
    """Registry of armed :class:`FaultPlan` values, fired by site name.

    An injector with nothing armed is free: ``fire`` is a dict miss.  The
    same injector instance is shared by the service, its session manager,
    workers and checkpoint store, so one test arms one object and every
    layer sees it.
    """

    plans: dict[str, FaultPlan] = field(default_factory=dict)
    #: ordered record of every firing (site names), for test assertions.
    log: list[str] = field(default_factory=list)

    def arm(
        self,
        site: str,
        *,
        error: Exception | None = None,
        delay_s: float = 0.0,
        times: int | None = 1,
        after: int = 0,
        corrupt: str | None = None,
    ) -> FaultPlan:
        """Arm ``site``; returns the plan (inspect ``fired`` afterwards).

        With no explicit effect (no ``error``, no delay, no corruption) the
        plan defaults to raising :class:`InjectedFault` — the common "make
        this step blow up" spelling.
        """
        if site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {site!r}; valid sites: {list(FAULT_SITES)}")
        if error is None and delay_s == 0.0 and corrupt is None:
            error = InjectedFault(f"injected fault at {site}")
        plan = FaultPlan(
            site=site, error=error, delay_s=delay_s, times=times, after=after,
            corrupt=corrupt,
        )
        self.plans[site] = plan
        return plan

    def disarm(self, site: str) -> None:
        self.plans.pop(site, None)

    def fired(self, site: str) -> int:
        plan = self.plans.get(site)
        return plan.fired if plan is not None else 0

    def fire(self, site: str) -> FaultPlan | None:
        """One pass through ``site``: trigger the armed plan, if any.

        Returns the plan when it fired without raising (so the caller can
        read ``corrupt``), ``None`` when nothing is armed or the plan is
        outside its firing window.  Raises ``plan.error`` when one is set.
        """
        plan = self.plans.get(site)
        if plan is None:
            return None
        plan.calls += 1
        if plan.calls <= plan.after or plan.exhausted:
            return None
        plan.fired += 1
        self.log.append(site)
        if plan.delay_s:
            time.sleep(plan.delay_s)
        if plan.error is not None:
            raise plan.error
        return plan
