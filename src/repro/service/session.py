"""Tenant sessions and the LRU/TTL session pool.

A :class:`Session` owns one streaming engine plus a bounded queue of pending
chunks; its :meth:`Session.run` coroutine is the *only* place the engine is
touched, so per-tenant updates are strictly serialised (which is what makes
service labels bit-identical to a serial ``consume()`` of the same feed)
while different tenants' workers interleave freely on the event loop.

The :class:`SessionManager` is the pool above the sessions: tenant → session
lookup in LRU order, capacity-cap enforcement (evict the least-recently-used
*idle* session to make room, otherwise signal capacity backpressure), TTL
sweeps over idle sessions, and the exactly-once teardown path — every
eviction route funnels through :meth:`SessionManager.evict`, which calls the
engine's idempotent ``release()`` so slot-buffer scenes are reclaimed.
"""

from __future__ import annotations

import asyncio
import logging
import time
from collections import OrderedDict, deque
from typing import Callable

import numpy as np

from ..api.registry import make_streaming_clusterer
from .config import ServiceConfig
from .faults import FaultInjector
from .metrics import ServiceMetrics, SessionMetrics
from .store import CheckpointError, CorruptCheckpointError, SnapshotStore

__all__ = ["Session", "SessionManager", "CapacityError", "SessionError"]

logger = logging.getLogger(__name__)


class CapacityError(RuntimeError):
    """The session pool is full and no idle session can be evicted."""


class SessionError(RuntimeError):
    """The session cannot accept the request (failed engine or bad input)."""


class Session:
    """One tenant's streaming engine behind a bounded micro-batching queue."""

    def __init__(
        self,
        tenant: str,
        engine,
        config: ServiceConfig,
        *,
        clock: Callable[[], float] = time.monotonic,
        service_metrics: ServiceMetrics | None = None,
        faults: FaultInjector | None = None,
        restored: bool = False,
    ) -> None:
        self.tenant = tenant
        self.engine = engine
        self.config = config
        self._clock = clock
        self._faults = faults
        #: True when this session was rebuilt from a spilled checkpoint.
        self.restored = restored
        #: spill outcome, set by the manager at eviction: None while live,
        #: then True (window checkpointed) or False (window dropped).
        self.spilled: bool | None = None
        self.spill_error: str | None = None
        self.metrics = SessionMetrics(tenant, clock(), latency_window=config.latency_window)
        self._service_metrics = service_metrics

        # Never coalesce past the engine's sliding window: an update larger
        # than the window truncates to its newest points, which would skip
        # arrival numbers the serial per-chunk feed assigns — breaking the
        # bit-identity guarantee.  (A single oversized chunk still passes
        # through untouched; serial consume truncates it identically.)
        window = getattr(engine, "window", None)
        self._max_batch_points = config.max_batch_points
        if window is not None:
            self._max_batch_points = min(self._max_batch_points, int(window))

        self._queue: deque[np.ndarray] = deque()
        self._queued_points = 0
        self._cond = asyncio.Condition()
        self._busy = False
        self._stopping = False
        self.closed = False
        #: point dimensionality pinned by the first accepted chunk; later
        #: chunks must match so coalesced batches always vstack cleanly.
        self._dim: int | None = None
        #: set when an engine update raised: the session is failed and
        #: refuses further ingest until the tenant evicts it.
        self.error: str | None = None

    # ------------------------------------------------------------------ #
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def queued_points(self) -> int:
        return self._queued_points

    @property
    def idle(self) -> bool:
        """No queued work and no update in flight."""
        return not self._queue and not self._busy

    def idle_for(self, now: float) -> float:
        return now - self.metrics.last_active_at

    # ------------------------------------------------------------------ #
    async def enqueue(self, chunk: np.ndarray) -> bool:
        """Accept one chunk, or refuse it when the queue budget is spent.

        Returns True when the chunk was queued; False signals backpressure
        (the caller should reply ``busy`` with the config's retry hint).
        Raises :class:`SessionError` for chunks the session can never take:
        a failed session, or a chunk whose dimensionality differs from the
        one the first accepted chunk pinned (mixed-dim chunks would make the
        coalescing ``np.vstack`` raise inside the worker).
        """
        async with self._cond:
            # Every check sits inside the lock: concurrent enqueues suspended
            # on `async with` must not all pass a stale bound/state check.
            now = self._clock()
            if self._stopping or self.closed:
                return False
            if self.error is not None:
                raise SessionError(
                    f"session for tenant {self.tenant!r} failed ({self.error}); "
                    "evict the tenant to reset it"
                )
            dim = int(chunk.shape[1])
            if self._dim is None:
                self._dim = dim
            elif dim != self._dim:
                raise SessionError(
                    f"tenant {self.tenant!r} session holds {self._dim}-d points; "
                    f"got a {dim}-d chunk (per-session dimensionality is fixed "
                    "by the first chunk)"
                )
            if len(self._queue) >= self.config.max_queue_chunks:
                self.metrics.observe_reject(now)
                return False
            self._queue.append(chunk)
            self._queued_points += int(chunk.shape[0])
            self.metrics.observe_accept(chunk.shape[0], now)
            self._cond.notify_all()
        return True

    def _take_batch(self) -> list[np.ndarray]:
        """Pop the next micro-batch (≥1 chunk, capped by the batch budgets)."""
        batch: list[np.ndarray] = [self._queue.popleft()]
        points = batch[0].shape[0]
        while (
            self._queue
            and len(batch) < self.config.max_batch_chunks
            and points + self._queue[0].shape[0] <= self._max_batch_points
        ):
            points += self._queue[0].shape[0]
            batch.append(self._queue.popleft())
        self._queued_points -= points
        return batch

    async def run(self) -> None:
        """Worker loop: drain the queue in micro-batches, one update each.

        Chunks queued behind the in-flight update coalesce into the next
        batch — one ``np.vstack`` + one ``engine.update()`` call — which is
        exactly as many points in the same arrival order as the serial
        per-chunk feed, so the labelling is unchanged while per-point
        overhead (scene commits, launches, bookkeeping) is amortised.
        """
        while True:
            async with self._cond:
                while not self._queue and not self._stopping:
                    await self._cond.wait()
                if self._stopping and not self._queue:
                    return
                batch = self._take_batch()
                self._busy = True
            failure: str | None = None
            try:
                points = batch[0] if len(batch) == 1 else np.vstack(batch)
                t0 = time.perf_counter()
                if self._faults is not None:
                    # Chaos hook: an armed error takes the same failed-session
                    # path as an organic engine exception; an armed delay
                    # models a slow update (and shows up in the latency ring).
                    self._faults.fire("session.update")
                self._update(points)
                wall = time.perf_counter() - t0
                self.metrics.observe_batch(len(batch), points.shape[0], wall, self._clock())
                if self._service_metrics is not None:
                    self._service_metrics.observe_batch(len(batch), points.shape[0])
            except Exception as exc:
                # A raising update must not kill the worker: acked chunks
                # would then sit unprocessed forever and drain() would hang
                # every read/evict/shutdown on this tenant.  Fail the session
                # instead: drop its pending work, wake drain() waiters, and
                # let enqueue refuse further chunks until the tenant evicts.
                failure = f"{type(exc).__name__}: {exc}"
                logger.exception(
                    "update failed for tenant %r; failing the session", self.tenant
                )
            finally:
                async with self._cond:
                    if failure is not None:
                        self.error = failure
                        self.metrics.observe_update_failure(self._clock())
                        if self._service_metrics is not None:
                            self._service_metrics.observe_update_failure()
                        self._queue.clear()
                        self._queued_points = 0
                    self._busy = False
                    self._cond.notify_all()
            # Yield so other sessions' workers interleave between batches.
            await asyncio.sleep(0)

    def _update(self, points: np.ndarray) -> None:
        update = getattr(self.engine, "update", None)
        if update is not None:
            update(points)
        else:
            self.engine.partial_fit(points)

    async def drain(self) -> None:
        """Wait until every accepted chunk has been folded into the engine."""
        async with self._cond:
            while self._queue or self._busy:
                await self._cond.wait()

    async def stop(self) -> None:
        """Ask the worker to exit once the queue is empty."""
        async with self._cond:
            self._stopping = True
            self._cond.notify_all()

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the engine (idempotent; the pool's teardown endpoint)."""
        if self.closed:
            return
        self.closed = True
        release = getattr(self.engine, "release", None)
        if release is not None:
            release()

    def stats(self, now: float | None = None) -> dict:
        now = self._clock() if now is None else now
        payload = self.metrics.as_dict(
            now, queue_depth=self.queue_depth, queued_points=self._queued_points
        )
        payload["error"] = self.error
        payload["restored"] = self.restored
        payload["spilled"] = self.spilled
        payload["spill_error"] = self.spill_error
        summary = getattr(self.engine, "summary", None)
        if summary is not None:
            payload["engine"] = summary()
        return payload


class SessionManager:
    """LRU-ordered pool of tenant sessions with capacity and TTL policies."""

    def __init__(
        self,
        config: ServiceConfig,
        *,
        clock: Callable[[], float] = time.monotonic,
        metrics: ServiceMetrics | None = None,
        store: SnapshotStore | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        self.config = config
        self._clock = clock
        self.metrics = metrics or ServiceMetrics()
        self.store = store
        self.faults = faults
        self._sessions: "OrderedDict[str, Session]" = OrderedDict()
        # Fail fast on a batch-only template (instead of at first ingest):
        # resolve() also validates backend/knob consistency.
        entry, backend = config.spec.resolve()
        if not entry.supports_partial_fit:
            raise ValueError(
                f"service spec algorithm {entry.name!r} does not support "
                "partial_fit; use a streaming-capable algorithm"
            )
        self._engine_entry = entry
        self._engine_backend = backend

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, tenant: str) -> bool:
        return tenant in self._sessions

    def tenants(self) -> list[str]:
        return list(self._sessions)

    def get(self, tenant: str, *, touch: bool = True) -> Session | None:
        session = self._sessions.get(tenant)
        if session is not None and touch:
            self._sessions.move_to_end(tenant)
            session.metrics.touch(self._clock())
        return session

    # ------------------------------------------------------------------ #
    def _build_engine(self, first_chunk: np.ndarray | None):
        spec = self.config.spec
        if (
            self.config.presize
            and first_chunk is not None
            and self._engine_entry.name == "streaming-rt-dbscan"
        ):
            from ..streaming.engine import StreamingRTDBSCAN

            # The first chunk stands in for the feed's extent/density sample;
            # for_feed sizes the slot buffer from the tiler occupancy bound so
            # a steady feed never pays a growth-forced rebuild.  A feed that
            # outgrows the estimate just falls back to geometric growth.
            params = dict(spec.params)
            if self._engine_backend is not None:
                # The spec's neighbour backend (including the "algo@backend"
                # spelling) must survive the presize shortcut, which bypasses
                # the registry factory that would normally plumb it through.
                params.setdefault("backend", self._engine_backend)
            if spec.native is not None:
                params.setdefault("native", spec.native)
            if spec.native_threads is not None:
                params.setdefault("native_threads", spec.native_threads)
            return StreamingRTDBSCAN.for_feed(
                first_chunk,
                spec.eps,
                spec.min_pts,
                window=params.pop("window", None),
                chunk_size=max(1, first_chunk.shape[0]),
                **params,
            )
        return make_streaming_clusterer(spec)

    def get_or_create(
        self, tenant: str, *, first_chunk: np.ndarray | None = None
    ) -> tuple[Session, bool]:
        """The tenant's session, creating (and possibly evicting) as needed.

        Returns ``(session, created)``.  At capacity, the least-recently-used
        *idle* session is evicted to make room; when every session has work
        in flight, :class:`CapacityError` is raised and the service turns it
        into capacity backpressure (a ``busy`` response).
        """
        session = self.get(tenant)
        if session is not None:
            return session, False
        session = self.restore_session(tenant)
        if session is None:
            self._make_room()
            session = Session(tenant, self._build_engine(first_chunk), self.config,
                              clock=self._clock, service_metrics=self.metrics,
                              faults=self.faults)
            self._sessions[tenant] = session
            self.metrics.observe_session_created()
        return session, True

    def _make_room(self) -> None:
        """Ensure the pool has a free slot, LRU-evicting an idle session."""
        if len(self._sessions) < self.config.max_sessions:
            return
        victim = next(
            (t for t, s in self._sessions.items() if s.idle), None
        )
        if victim is None:
            raise CapacityError(
                f"session pool is full ({self.config.max_sessions} busy sessions)"
            )
        self.evict(victim, reason="lru")

    def restore_session(self, tenant: str) -> Session | None:
        """Rebuild the tenant's session from its spilled checkpoint, if any.

        Returns ``None`` when there is no store, no checkpoint, or the
        checkpoint cannot be used (corrupt files are quarantined by the
        store; restore failures are counted) — the caller then treats the
        tenant as fresh.  May raise :class:`CapacityError` exactly like a
        fresh create.
        """
        if self.store is None or self._engine_entry.name != "streaming-rt-dbscan":
            return None
        path = self.store.path_for(tenant)
        if not path.exists():
            return None
        from ..streaming.engine import StreamingRTDBSCAN

        t0 = time.perf_counter()
        try:
            record = self.store.load(tenant)
            engine = StreamingRTDBSCAN.restore(record["snapshot"])
        except CorruptCheckpointError as exc:
            # The store already moved the file into quarantine/; the tenant
            # starts fresh and the bad bytes stay on disk for forensics.
            logger.warning("checkpoint for tenant %r quarantined: %s", tenant, exc)
            self.metrics.observe_checkpoint_corrupt()
            self.metrics.observe_restore_failure()
            return None
        except (CheckpointError, ValueError, KeyError, TypeError) as exc:
            logger.warning("restore for tenant %r failed: %s; starting fresh", tenant, exc)
            self.metrics.observe_restore_failure()
            return None
        self._make_room()
        session = Session(tenant, engine, self.config, clock=self._clock,
                          service_metrics=self.metrics, faults=self.faults,
                          restored=True)
        self._sessions[tenant] = session
        self.metrics.observe_restore(time.perf_counter() - t0)
        return session

    # ------------------------------------------------------------------ #
    def evict(self, tenant: str, *, reason: str = "explicit") -> Session | None:
        """Remove and close a session; returns it (already released) or None.

        With a store attached, TTL/LRU/shutdown evictions *spill* the
        engine's snapshot to disk first (the tenant's next request restores
        it); an explicit evict is a tenant reset, so its checkpoint is
        deleted instead.  The outcome lands on the returned session
        (``spilled`` / ``spill_error``) and in the service metrics.
        """
        session = self._sessions.pop(tenant, None)
        if session is None:
            return None
        if self.store is not None and reason == "explicit":
            self.store.delete(tenant)
        if self.store is not None and reason != "explicit":
            session.spilled, session.spill_error = self._spill(session)
        else:
            session.spilled = False
        session.close()
        self.metrics.observe_eviction(reason)
        self.metrics.observe_tenant_eviction(tenant)
        if not session.spilled:
            self.metrics.observe_drop(tenant)
        return session

    def _spill(self, session: Session) -> tuple[bool, str | None]:
        """Checkpoint one session's window; returns (spilled, error)."""
        snapshot = getattr(session.engine, "snapshot", None)
        if snapshot is None:
            return False, "engine does not support snapshot"
        if session.error is not None:
            return False, f"session failed ({session.error}); window not trusted"
        t0 = time.perf_counter()
        try:
            self.store.save(session.tenant, snapshot())
        except CheckpointError as exc:
            logger.warning("spill for tenant %r failed: %s; window dropped",
                           session.tenant, exc)
            self.metrics.observe_checkpoint_failure()
            return False, str(exc)
        self.metrics.observe_spill(session.tenant, time.perf_counter() - t0)
        return True, None

    def sweep(self, now: float | None = None) -> list[Session]:
        """Evict every idle session older than the TTL; returns the evicted."""
        if self.faults is not None:
            # Chaos hook: an armed error propagates into the service's sweep
            # loop, which must log it and keep sweeping.
            self.faults.fire("sweep")
        ttl = self.config.session_ttl_s
        if ttl is None:
            return []
        now = self._clock() if now is None else now
        expired = [
            tenant
            for tenant, session in self._sessions.items()
            if session.idle and session.idle_for(now) > ttl
        ]
        return [self.evict(tenant, reason="ttl") for tenant in expired]

    def close_all(self, *, reason: str = "shutdown") -> list[Session]:
        """Evict every session (shutdown path)."""
        return [self.evict(tenant, reason=reason) for tenant in list(self._sessions)]

    # ------------------------------------------------------------------ #
    def stats(self, now: float | None = None) -> dict:
        now = self._clock() if now is None else now
        return {
            "num_sessions": len(self._sessions),
            "max_sessions": self.config.max_sessions,
            "tenants": {
                tenant: session.stats(now)
                for tenant, session in self._sessions.items()
            },
        }
