"""Thin stdlib TCP/JSON-lines front-end over :class:`ClusteringService`.

One request per line, one response per line — the framing is plain enough
that a shell one-liner can drive the service::

    printf '%s\n' '{"op":"ingest","tenant":"a","points":[[0,0],[0.1,0]]}' \
        '{"op":"stats"}' | nc 127.0.0.1 7155

The server is a single :func:`asyncio.start_server` loop sharing the event
loop with the session workers, so no extra threads or processes are
involved; a ``shutdown`` request (or reaching ``max_requests``, used by the
CI smoke test) drains and tears down every session before the listener
closes.  :func:`run_server` is the synchronous convenience the ``rt-dbscan
serve`` CLI subcommand calls.
"""

from __future__ import annotations

import asyncio
from pathlib import Path

from .config import ServiceConfig
from .protocol import ProtocolError, Request, Response, decode_line, encode_line
from .service import ClusteringService

__all__ = ["TCPFrontend", "run_server"]


class TCPFrontend:
    """JSON-lines listener bound to one :class:`ClusteringService`.

    Parameters
    ----------
    service:
        The service to expose (started lazily on first request).
    host, port:
        Bind address; ``port=0`` picks a free ephemeral port, exposed via
        :attr:`port` after :meth:`start` (and via ``port_file``).
    port_file:
        Optional path that receives the bound port number once listening —
        how test/CI drivers starting the server in the background learn
        where to connect without racing on stdout.
    max_requests:
        Stop serving (with a full service shutdown) after this many
        requests; ``None`` serves until a ``shutdown`` request arrives.
    """

    def __init__(
        self,
        service: ClusteringService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        port_file: str | Path | None = None,
        max_requests: int | None = None,
    ) -> None:
        if max_requests is not None and max_requests < 1:
            raise ValueError("max_requests must be a positive integer or None")
        self.service = service
        self.host = host
        self.port = int(port)
        self.port_file = Path(port_file) if port_file else None
        self.max_requests = max_requests
        self.requests_served = 0
        self._server: asyncio.AbstractServer | None = None
        self._done = asyncio.Event()

    # ------------------------------------------------------------------ #
    async def start(self) -> "TCPFrontend":
        await self.service.start()
        # Size the stream-reader line limit for real ingest payloads: the
        # asyncio default (64 KiB) caps out around a couple of thousand JSON
        # points, far below the advertised max_batch_points budget.  Budget
        # ~64 bytes per encoded point plus envelope headroom.
        limit = max(1 << 16, self.service.config.max_batch_points * 64 + 4096)
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=limit
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.port_file is not None:
            self.port_file.write_text(f"{self.port}\n")
        return self

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while not self._done.is_set():
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line longer than the reader limit: the framing is lost
                    # mid-line, so reply with a protocol error and close this
                    # connection instead of silently dropping it.
                    self.service.metrics.observe_error()
                    response = Response(
                        status="error", op="?",
                        error="request line exceeds the server's line limit; "
                              "split the ingest into smaller chunks",
                    )
                    writer.write(encode_line(response.as_dict()))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._serve_line(line)
                writer.write(encode_line(response.as_dict()))
                await writer.drain()
                if response.op == "shutdown" or (
                    self.max_requests is not None
                    and self.requests_served >= self.max_requests
                ):
                    if response.op != "shutdown":
                        await self.service.aclose()
                    self._done.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_line(self, line: bytes) -> Response:
        self.requests_served += 1
        try:
            request = Request.from_dict(decode_line(line))
        except ProtocolError as exc:
            self.service.metrics.observe_error()
            return Response(status="error", op="?", error=str(exc))
        return await self.service.submit(request)

    # ------------------------------------------------------------------ #
    async def wait_closed(self) -> None:
        """Serve until shutdown/max_requests, then close the listener."""
        await self._done.wait()
        await self.aclose()

    async def aclose(self) -> None:
        self._done.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.aclose()


def run_server(
    config: ServiceConfig | None = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    port_file: str | Path | None = None,
    max_requests: int | None = None,
    announce=print,
) -> int:
    """Run the TCP front-end until shutdown (the CLI entry point).

    Blocks the calling thread inside ``asyncio.run``; returns 0 on a clean
    shutdown.  ``announce`` receives the human-readable "serving on
    host:port" line (injectable for tests).
    """

    async def _main() -> None:
        frontend = TCPFrontend(
            ClusteringService(config),
            host=host, port=port, port_file=port_file, max_requests=max_requests,
        )
        await frontend.start()
        announce(f"rt-dbscan service listening on {frontend.host}:{frontend.port}")
        try:
            await frontend.wait_closed()
        finally:
            await frontend.aclose()
        announce(
            f"rt-dbscan service stopped after {frontend.requests_served} request(s)"
        )

    asyncio.run(_main())
    return 0
