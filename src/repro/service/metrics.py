"""Service observability: per-session and service-wide metrics.

Every number the ``stats`` op exports lives here, kept deliberately
allocation-light so metric upkeep never competes with the update path:
counters are plain ints, and update latencies go into a fixed-size ring
buffer per session (:class:`LatencyWindow`) from which p50/p99 are computed
on demand.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LatencyWindow", "SessionMetrics", "ServiceMetrics"]


class LatencyWindow:
    """Fixed-capacity ring buffer of wall latencies with percentile queries."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._buf = np.zeros(self.capacity, dtype=np.float64)
        self._next = 0
        self.count = 0  #: total observations ever (not just retained ones)

    def observe(self, seconds: float) -> None:
        self._buf[self._next] = seconds
        self._next = (self._next + 1) % self.capacity
        self.count += 1

    def values(self) -> np.ndarray:
        return self._buf[: min(self.count, self.capacity)]

    def percentile(self, q: float) -> float:
        vals = self.values()
        return float(np.percentile(vals, q)) if vals.size else 0.0

    def as_dict(self) -> dict:
        vals = self.values()
        return {
            "count": self.count,
            "p50_s": float(np.percentile(vals, 50)) if vals.size else 0.0,
            "p99_s": float(np.percentile(vals, 99)) if vals.size else 0.0,
            "mean_s": float(vals.mean()) if vals.size else 0.0,
            "max_s": float(vals.max()) if vals.size else 0.0,
        }


class SessionMetrics:
    """Ingest/batching/latency counters for one tenant session."""

    def __init__(self, tenant: str, created_at: float, *, latency_window: int = 512) -> None:
        self.tenant = tenant
        self.created_at = created_at
        self.last_active_at = created_at
        self.chunks_accepted = 0
        self.chunks_rejected = 0
        self.chunks_ingested = 0
        self.points_accepted = 0
        self.points_ingested = 0
        self.batches = 0
        self.max_batch_chunks = 0
        self.max_batch_points = 0
        self.update_failures = 0
        self.latency = LatencyWindow(latency_window)

    # ------------------------------------------------------------------ #
    def observe_accept(self, num_points: int, now: float) -> None:
        self.chunks_accepted += 1
        self.points_accepted += int(num_points)
        self.last_active_at = now

    def observe_reject(self, now: float) -> None:
        self.chunks_rejected += 1
        self.last_active_at = now

    def observe_batch(self, num_chunks: int, num_points: int, wall_s: float, now: float) -> None:
        self.batches += 1
        self.chunks_ingested += int(num_chunks)
        self.points_ingested += int(num_points)
        self.max_batch_chunks = max(self.max_batch_chunks, int(num_chunks))
        self.max_batch_points = max(self.max_batch_points, int(num_points))
        self.latency.observe(wall_s)
        self.last_active_at = now

    def observe_update_failure(self, now: float) -> None:
        self.update_failures += 1
        self.last_active_at = now

    def touch(self, now: float) -> None:
        self.last_active_at = now

    # ------------------------------------------------------------------ #
    @property
    def mean_batch_chunks(self) -> float:
        return self.chunks_ingested / self.batches if self.batches else 0.0

    def ingest_rate(self, now: float) -> float:
        """Points ingested per wall second since the session was created."""
        elapsed = max(now - self.created_at, 1e-9)
        return self.points_ingested / elapsed

    def as_dict(self, now: float, *, queue_depth: int = 0, queued_points: int = 0) -> dict:
        return {
            "tenant": self.tenant,
            "age_s": now - self.created_at,
            "idle_s": now - self.last_active_at,
            "queue_depth": int(queue_depth),
            "queued_points": int(queued_points),
            "chunks_accepted": self.chunks_accepted,
            "chunks_rejected": self.chunks_rejected,
            "chunks_ingested": self.chunks_ingested,
            "points_ingested": self.points_ingested,
            "ingest_rate_pts_per_s": self.ingest_rate(now),
            "batches": self.batches,
            "mean_batch_chunks": self.mean_batch_chunks,
            "max_batch_chunks": self.max_batch_chunks,
            "max_batch_points": self.max_batch_points,
            "update_failures": self.update_failures,
            "update_latency": self.latency.as_dict(),
        }


class ServiceMetrics:
    """Service-wide counters aggregated across all sessions ever seen."""

    def __init__(self) -> None:
        self.started_at: float | None = None
        self.requests: dict[str, int] = {}
        self.errors = 0
        self.sessions_created = 0
        self.sessions_evicted: dict[str, int] = {}  # reason -> count
        self.chunks_rejected = 0
        self.chunks_ingested = 0
        self.points_ingested = 0
        self.batches = 0
        self.update_failures = 0

    # ------------------------------------------------------------------ #
    def observe_request(self, op: str) -> None:
        self.requests[op] = self.requests.get(op, 0) + 1

    def observe_error(self) -> None:
        self.errors += 1

    def observe_session_created(self) -> None:
        self.sessions_created += 1

    def observe_eviction(self, reason: str) -> None:
        self.sessions_evicted[reason] = self.sessions_evicted.get(reason, 0) + 1

    def observe_reject(self) -> None:
        self.chunks_rejected += 1

    def observe_batch(self, num_chunks: int, num_points: int) -> None:
        self.batches += 1
        self.chunks_ingested += int(num_chunks)
        self.points_ingested += int(num_points)

    def observe_update_failure(self) -> None:
        self.update_failures += 1

    # ------------------------------------------------------------------ #
    @property
    def total_evictions(self) -> int:
        return sum(self.sessions_evicted.values())

    def as_dict(self, now: float) -> dict:
        uptime = now - self.started_at if self.started_at is not None else 0.0
        return {
            "uptime_s": uptime,
            "requests": dict(self.requests),
            "errors": self.errors,
            "sessions_created": self.sessions_created,
            "sessions_evicted": dict(self.sessions_evicted),
            "total_evictions": self.total_evictions,
            "chunks_rejected": self.chunks_rejected,
            "chunks_ingested": self.chunks_ingested,
            "points_ingested": self.points_ingested,
            "batches": self.batches,
            "update_failures": self.update_failures,
            "mean_batch_chunks": self.chunks_ingested / self.batches if self.batches else 0.0,
            "ingest_rate_pts_per_s": self.points_ingested / uptime if uptime > 0 else 0.0,
        }
