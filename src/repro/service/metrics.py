"""Service observability: per-session and service-wide metrics.

Every number the ``stats`` op exports lives here, kept deliberately
allocation-light so metric upkeep never competes with the update path:
counters are plain ints, and update latencies go into a fixed-size ring
buffer per session (:class:`LatencyWindow`) from which p50/p99 are computed
on demand.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LatencyWindow", "SessionMetrics", "ServiceMetrics"]


class LatencyWindow:
    """Fixed-capacity ring buffer of wall latencies with percentile queries."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._buf = np.zeros(self.capacity, dtype=np.float64)
        self._next = 0
        self.count = 0  #: total observations ever (not just retained ones)
        self.total = 0.0  #: running sum over all observations ever

    def observe(self, seconds: float) -> None:
        self._buf[self._next] = seconds
        self._next = (self._next + 1) % self.capacity
        self.count += 1
        self.total += float(seconds)

    def values(self) -> np.ndarray:
        return self._buf[: min(self.count, self.capacity)]

    def percentile(self, q: float) -> float:
        vals = self.values()
        return float(np.percentile(vals, q)) if vals.size else 0.0

    def as_dict(self) -> dict:
        vals = self.values()
        return {
            "count": self.count,
            "p50_s": float(np.percentile(vals, 50)) if vals.size else 0.0,
            "p99_s": float(np.percentile(vals, 99)) if vals.size else 0.0,
            "mean_s": float(vals.mean()) if vals.size else 0.0,
            "max_s": float(vals.max()) if vals.size else 0.0,
        }


class SessionMetrics:
    """Ingest/batching/latency counters for one tenant session."""

    def __init__(self, tenant: str, created_at: float, *, latency_window: int = 512) -> None:
        self.tenant = tenant
        self.created_at = created_at
        self.last_active_at = created_at
        self.chunks_accepted = 0
        self.chunks_rejected = 0
        self.chunks_ingested = 0
        self.points_accepted = 0
        self.points_ingested = 0
        self.batches = 0
        self.max_batch_chunks = 0
        self.max_batch_points = 0
        self.update_failures = 0
        self.latency = LatencyWindow(latency_window)

    # ------------------------------------------------------------------ #
    def observe_accept(self, num_points: int, now: float) -> None:
        self.chunks_accepted += 1
        self.points_accepted += int(num_points)
        self.last_active_at = now

    def observe_reject(self, now: float) -> None:
        self.chunks_rejected += 1
        self.last_active_at = now

    def observe_batch(self, num_chunks: int, num_points: int, wall_s: float, now: float) -> None:
        self.batches += 1
        self.chunks_ingested += int(num_chunks)
        self.points_ingested += int(num_points)
        self.max_batch_chunks = max(self.max_batch_chunks, int(num_chunks))
        self.max_batch_points = max(self.max_batch_points, int(num_points))
        self.latency.observe(wall_s)
        self.last_active_at = now

    def observe_update_failure(self, now: float) -> None:
        self.update_failures += 1
        self.last_active_at = now

    def touch(self, now: float) -> None:
        self.last_active_at = now

    # ------------------------------------------------------------------ #
    @property
    def mean_batch_chunks(self) -> float:
        return self.chunks_ingested / self.batches if self.batches else 0.0

    def ingest_rate(self, now: float) -> float:
        """Points ingested per wall second since the session was created."""
        elapsed = max(now - self.created_at, 1e-9)
        return self.points_ingested / elapsed

    def as_dict(self, now: float, *, queue_depth: int = 0, queued_points: int = 0) -> dict:
        return {
            "tenant": self.tenant,
            "age_s": now - self.created_at,
            "idle_s": now - self.last_active_at,
            "queue_depth": int(queue_depth),
            "queued_points": int(queued_points),
            "chunks_accepted": self.chunks_accepted,
            "chunks_rejected": self.chunks_rejected,
            "chunks_ingested": self.chunks_ingested,
            "points_ingested": self.points_ingested,
            "ingest_rate_pts_per_s": self.ingest_rate(now),
            "batches": self.batches,
            "mean_batch_chunks": self.mean_batch_chunks,
            "max_batch_chunks": self.max_batch_chunks,
            "max_batch_points": self.max_batch_points,
            "update_failures": self.update_failures,
            "update_latency": self.latency.as_dict(),
        }


class ServiceMetrics:
    """Service-wide counters aggregated across all sessions ever seen."""

    def __init__(self) -> None:
        self.started_at: float | None = None
        self.requests: dict[str, int] = {}
        self.errors = 0
        self.sessions_created = 0
        self.sessions_evicted: dict[str, int] = {}  # reason -> count
        self.chunks_rejected = 0
        self.chunks_ingested = 0
        self.points_ingested = 0
        self.batches = 0
        self.update_failures = 0
        # Durability: spill/restore/checkpoint outcomes (all zero when the
        # service runs without a state_dir).
        self.sessions_spilled = 0
        self.sessions_dropped = 0
        self.tenant_evictions: dict[str, int] = {}  # tenant -> evictions
        self.tenant_spills: dict[str, int] = {}     # tenant -> successful spills
        self.checkpoints_written = 0
        self.checkpoint_failures = 0
        self.checkpoints_corrupt = 0  # files quarantined on load
        self.sessions_restored = 0
        self.restore_failures = 0
        self.checkpoint_latency = LatencyWindow(128)
        self.restore_latency = LatencyWindow(128)

    # ------------------------------------------------------------------ #
    def observe_request(self, op: str) -> None:
        self.requests[op] = self.requests.get(op, 0) + 1

    def observe_error(self) -> None:
        self.errors += 1

    def observe_session_created(self) -> None:
        self.sessions_created += 1

    def observe_eviction(self, reason: str) -> None:
        self.sessions_evicted[reason] = self.sessions_evicted.get(reason, 0) + 1

    def observe_reject(self) -> None:
        self.chunks_rejected += 1

    def observe_batch(self, num_chunks: int, num_points: int) -> None:
        self.batches += 1
        self.chunks_ingested += int(num_chunks)
        self.points_ingested += int(num_points)

    def observe_update_failure(self) -> None:
        self.update_failures += 1

    # ------------------------------------------------------- durability -- #
    def observe_spill(self, tenant: str, wall_s: float) -> None:
        self.sessions_spilled += 1
        self.tenant_spills[tenant] = self.tenant_spills.get(tenant, 0) + 1
        self.checkpoints_written += 1
        self.checkpoint_latency.observe(wall_s)

    def observe_drop(self, tenant: str) -> None:
        self.sessions_dropped += 1

    def observe_tenant_eviction(self, tenant: str) -> None:
        self.tenant_evictions[tenant] = self.tenant_evictions.get(tenant, 0) + 1

    def observe_checkpoint(self, wall_s: float) -> None:
        self.checkpoints_written += 1
        self.checkpoint_latency.observe(wall_s)

    def observe_checkpoint_failure(self) -> None:
        self.checkpoint_failures += 1

    def observe_checkpoint_corrupt(self) -> None:
        self.checkpoints_corrupt += 1

    def observe_restore(self, wall_s: float) -> None:
        self.sessions_restored += 1
        self.restore_latency.observe(wall_s)

    def observe_restore_failure(self) -> None:
        self.restore_failures += 1

    # ------------------------------------------------------------------ #
    @property
    def total_evictions(self) -> int:
        return sum(self.sessions_evicted.values())

    def as_dict(self, now: float) -> dict:
        uptime = now - self.started_at if self.started_at is not None else 0.0
        return {
            "uptime_s": uptime,
            "requests": dict(self.requests),
            "errors": self.errors,
            "sessions_created": self.sessions_created,
            "sessions_evicted": dict(self.sessions_evicted),
            "total_evictions": self.total_evictions,
            "chunks_rejected": self.chunks_rejected,
            "chunks_ingested": self.chunks_ingested,
            "points_ingested": self.points_ingested,
            "batches": self.batches,
            "update_failures": self.update_failures,
            "mean_batch_chunks": self.chunks_ingested / self.batches if self.batches else 0.0,
            "ingest_rate_pts_per_s": self.points_ingested / uptime if uptime > 0 else 0.0,
            "sessions_spilled": self.sessions_spilled,
            "sessions_dropped": self.sessions_dropped,
            "tenant_evictions": dict(self.tenant_evictions),
            "tenant_spills": dict(self.tenant_spills),
            "checkpoints_written": self.checkpoints_written,
            "checkpoint_failures": self.checkpoint_failures,
            "checkpoints_corrupt": self.checkpoints_corrupt,
            "sessions_restored": self.sessions_restored,
            "restore_failures": self.restore_failures,
            "checkpoint_latency": self.checkpoint_latency.as_dict(),
            "restore_latency": self.restore_latency.as_dict(),
        }

    # ------------------------------------------------------------------ #
    def render_prometheus(self, now: float, *, num_sessions: int | None = None) -> str:
        """The service counters in Prometheus text exposition format.

        One self-contained string (``# HELP``/``# TYPE`` comments, one
        sample per line) so the service's ``metrics`` protocol op — or any
        sidecar that fetches it — can feed a standard scraper without an
        extra client library.
        """
        lines: list[str] = []

        def metric(name: str, kind: str, help_: str, samples: list[tuple[dict, float]]) -> None:
            lines.append(f"# HELP {name} {help_}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, value in samples:
                label_str = ""
                if labels:
                    pairs = ",".join(
                        f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
                    )
                    label_str = "{" + pairs + "}"
                value = float(value)
                rendered = str(int(value)) if value == int(value) else repr(value)
                lines.append(f"{name}{label_str} {rendered}")

        def summary(name: str, help_: str, window: LatencyWindow) -> None:
            metric(
                name, "summary", help_,
                [({"quantile": "0.5"}, window.percentile(50)),
                 ({"quantile": "0.99"}, window.percentile(99))],
            )
            lines.append(f"{name}_sum {repr(window.total)}")
            lines.append(f"{name}_count {window.count}")

        uptime = now - self.started_at if self.started_at is not None else 0.0
        metric("rtdbscan_uptime_seconds", "gauge",
               "Seconds since the service started.", [({}, uptime)])
        if num_sessions is not None:
            metric("rtdbscan_sessions", "gauge",
                   "Currently live tenant sessions.", [({}, num_sessions)])
        metric("rtdbscan_requests_total", "counter", "Requests served, by op.",
               [({"op": op}, n) for op, n in sorted(self.requests.items())])
        metric("rtdbscan_errors_total", "counter",
               "Requests answered with an error status.", [({}, self.errors)])
        metric("rtdbscan_chunks_rejected_total", "counter",
               "Ingest chunks refused with busy backpressure (client retries).",
               [({}, self.chunks_rejected)])
        metric("rtdbscan_chunks_ingested_total", "counter",
               "Chunks folded into engines.", [({}, self.chunks_ingested)])
        metric("rtdbscan_points_ingested_total", "counter",
               "Points folded into engines.", [({}, self.points_ingested)])
        metric("rtdbscan_update_failures_total", "counter",
               "Engine updates that raised (session failed).",
               [({}, self.update_failures)])
        metric("rtdbscan_sessions_created_total", "counter",
               "Sessions created (fresh builds, not restores).",
               [({}, self.sessions_created)])
        metric("rtdbscan_sessions_evicted_total", "counter",
               "Sessions evicted, by reason.",
               [({"reason": r}, n) for r, n in sorted(self.sessions_evicted.items())])
        metric("rtdbscan_sessions_spilled_total", "counter",
               "Evictions whose window was checkpointed to the state dir.",
               [({}, self.sessions_spilled)])
        metric("rtdbscan_sessions_dropped_total", "counter",
               "Evictions whose window was lost (no store, failed session, or spill error).",
               [({}, self.sessions_dropped)])
        metric("rtdbscan_tenant_evictions_total", "counter",
               "Evictions by tenant.",
               [({"tenant": t}, n) for t, n in sorted(self.tenant_evictions.items())])
        metric("rtdbscan_tenant_spills_total", "counter",
               "Successful spills by tenant.",
               [({"tenant": t}, n) for t, n in sorted(self.tenant_spills.items())])
        metric("rtdbscan_checkpoints_written_total", "counter",
               "Checkpoint files written (spills + periodic checkpoints).",
               [({}, self.checkpoints_written)])
        metric("rtdbscan_checkpoint_failures_total", "counter",
               "Checkpoint writes that failed (disk errors).",
               [({}, self.checkpoint_failures)])
        metric("rtdbscan_checkpoints_corrupt_total", "counter",
               "Checkpoint files that failed verification and were quarantined.",
               [({}, self.checkpoints_corrupt)])
        metric("rtdbscan_sessions_restored_total", "counter",
               "Sessions rebuilt from a checkpoint on a tenant's request.",
               [({}, self.sessions_restored)])
        metric("rtdbscan_restore_failures_total", "counter",
               "Restore attempts that failed (tenant started fresh).",
               [({}, self.restore_failures)])
        summary("rtdbscan_checkpoint_write_seconds",
                "Wall time of checkpoint writes.", self.checkpoint_latency)
        summary("rtdbscan_restore_seconds",
                "Wall time of session restores (load + window replay).",
                self.restore_latency)
        return "\n".join(lines) + "\n"


def _escape_label(value: str) -> str:
    """Escape a Prometheus label value (backslash, quote, newline)."""
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
