"""Multi-tenant streaming clustering service (the serving shell).

The layers below this package answer "how do I cluster one feed fast";
:mod:`repro.service` answers "how do I serve many of them at once".  It
wraps the estimator facade and :class:`~repro.streaming.engine.StreamingRTDBSCAN`
in a long-lived asyncio service:

* :mod:`repro.service.config`   — :class:`ServiceConfig`: the per-tenant
  clusterer template plus pool/batching/backpressure policy;
* :mod:`repro.service.protocol` — the typed ``ingest`` / ``query_labels`` /
  ``snapshot`` / ``evict`` / ``stats`` / ``shutdown`` request–response
  protocol and its JSON-lines framing;
* :mod:`repro.service.session`  — per-tenant :class:`Session` workers with
  bounded queues and micro-batched updates, pooled by the LRU/TTL
  :class:`SessionManager`;
* :mod:`repro.service.service`  — :class:`ClusteringService`, the in-process
  ``await service.submit(...)`` front door;
* :mod:`repro.service.metrics`  — per-tenant ingest rates, queue depths,
  batch sizes, eviction counts and p50/p99 update latencies, plus the
  Prometheus text exposition behind the ``metrics`` op;
* :mod:`repro.service.store`    — crash-safe checkpoint files (atomic
  writes, CRC32 verification, corrupt-file quarantine) that make evicted
  sessions durable and server restarts warm;
* :mod:`repro.service.faults`   — deterministic fault injection wired into
  the session workers, the sweeper and the store for chaos tests;
* :mod:`repro.service.client`   — the retrying TCP client (backoff +
  jitter, busy-backpressure handling, idempotent-safe resends);
* :mod:`repro.service.tcp`      — the stdlib TCP/JSON-lines front-end behind
  the ``rt-dbscan serve`` CLI subcommand.

Per-tenant outputs are bit-identical to a serial
:meth:`~repro.streaming.engine.StreamingRTDBSCAN.consume` of the same feed:
sessions serialise their own updates, and micro-batch coalescing preserves
arrival order, which is the only thing the engine's labelling depends on.
"""

from .client import AmbiguousRequestError, RetriesExhaustedError, RetryPolicy, ServiceClient
from .config import DEFAULT_SPEC, ServiceConfig
from .faults import FAULT_SITES, FaultInjector, FaultPlan, InjectedFault
from .metrics import LatencyWindow, ServiceMetrics, SessionMetrics
from .protocol import OPS, ProtocolError, Request, Response, decode_line, encode_line
from .service import ClusteringService
from .session import CapacityError, Session, SessionError, SessionManager
from .store import (
    CheckpointError,
    CorruptCheckpointError,
    SnapshotStore,
    verify_checkpoint_dir,
)
from .tcp import TCPFrontend, run_server

__all__ = [
    "DEFAULT_SPEC",
    "ServiceConfig",
    "LatencyWindow",
    "ServiceMetrics",
    "SessionMetrics",
    "OPS",
    "ProtocolError",
    "Request",
    "Response",
    "decode_line",
    "encode_line",
    "ClusteringService",
    "CapacityError",
    "Session",
    "SessionError",
    "SessionManager",
    "TCPFrontend",
    "run_server",
    "SnapshotStore",
    "CheckpointError",
    "CorruptCheckpointError",
    "verify_checkpoint_dir",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "FAULT_SITES",
    "ServiceClient",
    "RetryPolicy",
    "RetriesExhaustedError",
    "AmbiguousRequestError",
]
