"""Retrying JSON-lines TCP client for the clustering service.

:class:`ServiceClient` is the reference client for the ``rt-dbscan serve``
front-end: a blocking stdlib-socket client that turns the service's failure
modes into one coherent retry discipline —

* **backpressure**: a ``busy`` reply is not an error; the client sleeps at
  least the server's ``retry_after_s`` hint (the hint floors the backoff)
  and resends.  Resending after ``busy`` is always safe, for every op: the
  server received the request, *refused* it, and changed no state.
* **transport faults**: timeouts and dropped connections reconnect and
  retry with capped exponential backoff plus deterministic jitter
  (``RetryPolicy.seed`` pins the schedule for tests).
* **idempotent-safe resends**: if the connection dies *after* a request was
  sent but *before* its reply arrived, the outcome is unknown.  Reads and
  admin ops (``query_labels``, ``snapshot``, ``stats``, ``metrics``,
  ``checkpoint``, ``evict``) are safe to resend blind.  ``ingest`` is not —
  a lost ack may mean the chunk *was* folded in, and resending would
  double-ingest it — so the client raises :class:`AmbiguousRequestError`
  unless the caller opts into at-least-once delivery with
  ``resend_unacked=True``.

Typical use::

    with ServiceClient("127.0.0.1", port) as client:
        client.ingest("tenant-a", chunk)
        labels = client.query_labels("tenant-a").body["labels"]
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass

from .protocol import ProtocolError, Response, decode_line, encode_line

__all__ = [
    "ServiceClient",
    "RetryPolicy",
    "RetriesExhaustedError",
    "AmbiguousRequestError",
]


class RetriesExhaustedError(RuntimeError):
    """Every attempt failed; ``last_response``/``last_error`` hold the cause."""

    def __init__(self, message: str, *, last_response: Response | None = None,
                 last_error: Exception | None = None):
        super().__init__(message)
        self.last_response = last_response
        self.last_error = last_error


class AmbiguousRequestError(RuntimeError):
    """A non-idempotent request was sent but its outcome is unknown.

    Raised when the connection died between send and reply on an ``ingest``:
    the chunk may or may not have been accepted, so a blind resend could
    double-ingest it.  Callers that prefer at-least-once delivery construct
    the client with ``resend_unacked=True`` instead.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff/timeout schedule for :class:`ServiceClient`.

    ``base_backoff_s * multiplier**attempt`` capped at ``max_backoff_s``,
    floored by the server's ``retry_after_s`` hint on busy replies, then
    spread by ``±jitter`` (a fraction of the delay; ``seed`` makes the
    jitter deterministic).  ``timeout_s`` is the per-attempt socket timeout
    covering connect, send and the reply read.
    """

    max_attempts: int = 6
    base_backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25
    timeout_s: float = 10.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff bounds must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")

    def backoff(self, attempt: int, rng: random.Random, *, floor: float = 0.0) -> float:
        delay = min(self.max_backoff_s, self.base_backoff_s * self.multiplier ** attempt)
        delay = max(delay, floor)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)


class ServiceClient:
    """Blocking JSON-lines client with reconnect + retry (see module docs).

    ``sleep`` is injectable so tests can assert the backoff schedule without
    waiting it out.  The counters (``retries``, ``busy_retries``,
    ``reconnects``) mirror what the server-side metrics see from the other
    end of the wire.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        policy: RetryPolicy | None = None,
        resend_unacked: bool = False,
        sleep=time.sleep,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.policy = policy or RetryPolicy()
        self.resend_unacked = resend_unacked
        self._sleep = sleep
        self._rng = random.Random(self.policy.seed)
        self._sock: socket.socket | None = None
        self._file = None
        self.retries = 0        #: resends after transport faults
        self.busy_retries = 0   #: resends after busy backpressure
        self.reconnects = 0     #: connections re-established

    # ------------------------------------------------------------------ #
    def connect(self) -> "ServiceClient":
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.policy.timeout_s
            )
            self._sock = sock
            self._file = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _teardown(self) -> None:
        self.close()

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def request(self, payload: dict, *, idempotent: bool = True) -> Response:
        """Send one request dict, retrying per the policy; returns the reply.

        Raises :class:`RetriesExhaustedError` once the attempt budget is
        spent and :class:`AmbiguousRequestError` for an unacked
        non-idempotent send (unless ``resend_unacked``).  Error replies are
        returned, not raised — they are the server's answer, and resending
        an invalid request cannot make it valid.
        """
        policy = self.policy
        last_response: Response | None = None
        last_error: Exception | None = None
        for attempt in range(policy.max_attempts):
            sent = False
            try:
                if self._sock is None and attempt > 0:
                    self.reconnects += 1
                self.connect()
                self._sock.sendall(encode_line(payload))
                sent = True
                line = self._file.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                response = Response.from_dict(decode_line(line))
            except (OSError, ConnectionError, ProtocolError, KeyError) as exc:
                self._teardown()
                last_error = exc
                if sent and not idempotent and not self.resend_unacked:
                    raise AmbiguousRequestError(
                        "connection lost after a non-idempotent request was "
                        "sent; its outcome is unknown (pass resend_unacked=True "
                        f"for at-least-once delivery): {exc}"
                    ) from exc
                if attempt + 1 < policy.max_attempts:
                    self.retries += 1
                    self._sleep(policy.backoff(attempt, self._rng))
                continue
            if response.busy:
                last_response = response
                if attempt + 1 < policy.max_attempts:
                    self.busy_retries += 1
                    floor = float(response.retry_after_s or 0.0)
                    self._sleep(policy.backoff(attempt, self._rng, floor=floor))
                continue
            return response
        raise RetriesExhaustedError(
            f"request {payload.get('op', '?')!r} failed after "
            f"{policy.max_attempts} attempt(s)",
            last_response=last_response, last_error=last_error,
        )

    # ------------------------------------------------------------------ #
    def ingest(self, tenant: str, points, *, request_id=None) -> Response:
        payload: dict = {
            "op": "ingest", "tenant": tenant,
            "points": points if isinstance(points, list) else points.tolist(),
        }
        if request_id is not None:
            payload["request_id"] = request_id
        return self.request(payload, idempotent=False)

    def query_labels(self, tenant: str, *, request_id=None) -> Response:
        return self._simple("query_labels", tenant=tenant, request_id=request_id)

    def snapshot(self, tenant: str, *, request_id=None) -> Response:
        return self._simple("snapshot", tenant=tenant, request_id=request_id)

    def evict(self, tenant: str, *, request_id=None) -> Response:
        return self._simple("evict", tenant=tenant, request_id=request_id)

    def stats(self, *, request_id=None) -> Response:
        return self._simple("stats", request_id=request_id)

    def checkpoint(self, tenant: str | None = None, *, request_id=None) -> Response:
        return self._simple("checkpoint", tenant=tenant, request_id=request_id)

    def shutdown(self, *, request_id=None) -> Response:
        return self._simple("shutdown", request_id=request_id)

    def metrics_text(self) -> str:
        """The server's Prometheus exposition text (the scrape endpoint)."""
        response = self._simple("metrics")
        if not response.ok:
            raise RetriesExhaustedError(
                f"metrics op failed: {response.error}", last_response=response
            )
        return response.body.get("text", "")

    def _simple(self, op: str, *, tenant: str | None = None, request_id=None) -> Response:
        payload: dict = {"op": op}
        if tenant is not None:
            payload["tenant"] = tenant
        if request_id is not None:
            payload["request_id"] = request_id
        return self.request(payload, idempotent=True)
