"""CSR adjacency — the zero-materialisation contract of the pair pipeline.

Every neighbour backend answers stage-2 queries with a **CSR adjacency**: an
``indptr`` offset array of shape ``(num_queries + 1,)`` and an ``indices``
array holding, row by row, the ε-neighbour ids of each query.  Rows are
emitted in query order and each row's indices are sorted ascending, so the
representation is *canonical*: two backends that discover the same ε-pair
multiset produce byte-identical CSR arrays, regardless of traversal order.

This replaces the legacy ``(q_hit, p_hit)`` pair-array contract.  A pair
array stores the query id once per edge — an O(n·k) intermediate that is
pure redundancy on top of the neighbour lists — and, worse, every backend
used to materialise its *candidate* pair set (typically several times larger
than the confirmed set) before filtering.  Backends now produce the CSR
chunk-by-chunk (a block of queries at a time) and
:func:`repro.dbscan.formation.form_clusters_csr` consumes it directly, so
the full ε-pair set never exists in memory.

The helpers here are deliberately dependency-free (NumPy only) so that every
layer — ``bvh``, ``rtcore``, ``neighbors``, ``dbscan``, ``partition``,
``streaming`` — can share them without import cycles.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pairs_to_csr",
    "csr_to_pairs",
    "csr_row_ids",
    "expand_ranges",
    "concat_csr",
]


def pairs_to_csr(
    q: np.ndarray, p: np.ndarray, num_rows: int
) -> tuple[np.ndarray, np.ndarray]:
    """Convert ``(query, neighbour)`` pair arrays to canonical CSR form.

    Rows are the query ids ``0 .. num_rows - 1``; each row's indices come out
    sorted ascending.  Used by the few remaining pair producers (e.g. the
    triangle-mode ablation) to enter the CSR pipeline.
    """
    q = np.asarray(q, dtype=np.intp)
    p = np.asarray(p, dtype=np.intp)
    order = np.lexsort((p, q))
    counts = np.bincount(q, minlength=num_rows)
    indptr = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, p[order]


def csr_to_pairs(
    indptr: np.ndarray, indices: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Expand a CSR adjacency back into ``(query, neighbour)`` pair arrays.

    This *materialises* the redundant query column — it exists only for the
    legacy ``neighbor_pairs`` protocol surface and for small result sets
    (e.g. streaming window updates); the clustering pipelines consume CSR
    directly.
    """
    return csr_row_ids(indptr), np.asarray(indices, dtype=np.intp)


def csr_row_ids(indptr: np.ndarray) -> np.ndarray:
    """Row id of every entry of a CSR adjacency (``np.repeat`` of row ids)."""
    counts = np.diff(indptr)
    return np.repeat(np.arange(counts.shape[0], dtype=np.intp), counts)


def expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s + c)`` for every ``(s, c)`` range, vectorised.

    The shared gather primitive of the wavefront traversal (leaf → primitive
    ranges) and the grid stencil (cell → point ranges).
    """
    counts = np.asarray(counts, dtype=np.intp)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp)
    starts = np.asarray(starts, dtype=np.intp)
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    return np.repeat(starts, counts) + (np.arange(total, dtype=np.intp) - offsets)


def concat_csr(
    parts: list[tuple[np.ndarray, np.ndarray]]
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate row-contiguous CSR fragments into one CSR adjacency.

    ``parts`` is a list of ``(indptr, indices)`` fragments whose rows are
    consecutive (fragment ``k`` holds the rows immediately following fragment
    ``k - 1``), which is exactly what a chunk-by-chunk producer emits.
    """
    if not parts:
        return np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.intp)
    indptrs, indexes = zip(*parts)
    offsets = np.cumsum([0] + [idx.shape[0] for idx in indexes])
    merged_ptr = np.concatenate(
        [np.asarray(ptr[:-1], dtype=np.int64) + off
         for ptr, off in zip(indptrs, offsets[:-1])]
        + [np.asarray([offsets[-1]], dtype=np.int64)]
    )
    return merged_ptr, np.concatenate(indexes)
