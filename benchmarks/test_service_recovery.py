"""Durability cost curve — checkpoint write and restore latency vs window size.

The durable-session layer claims that spilling a session to disk and
restoring it later is cheap relative to the stream it protects, and that
the restore-by-replay path scales with the live window (not the stream's
lifetime).  This benchmark measures snapshot/write/restore latency and
checkpoint size across window sizes and asserts the parity bit that makes
the numbers meaningful: every restored engine must reproduce its donor's
labels exactly.
"""

from __future__ import annotations

from repro.bench.experiments import run_recovery_experiment

WINDOW_SIZES = (200, 600, 1200)


def test_checkpoint_write_and_restore_latency(benchmark):
    """Checkpoint cost grows with the window; parity never degrades."""
    record = benchmark.pedantic(
        lambda: run_recovery_experiment(window_sizes=WINDOW_SIZES),
        rounds=1,
        iterations=1,
    )
    print()
    print("=== checkpoint write / restore latency vs window size ===")
    print(f"  {'window':>7} {'points':>7} {'bytes':>9} {'snapshot':>10} "
          f"{'write':>10} {'restore':>10}  parity")
    for row in record["rows"]:
        print(f"  {row['window']:>7} {row['window_points']:>7} "
              f"{row['checkpoint_bytes']:>9} {row['snapshot_seconds']:>10.6f} "
              f"{row['write_seconds']:>10.6f} {row['restore_seconds']:>10.6f}  "
              f"{row['labels_match']}")

    rows = record["rows"]
    assert [r["window"] for r in rows] == list(WINDOW_SIZES)
    # The numbers only matter if restore is *correct* at every size.
    assert all(r["labels_match"] for r in rows)
    # Checkpoint size tracks the live window, not the stream's lifetime.
    sizes = [r["checkpoint_bytes"] for r in rows]
    assert sizes == sorted(sizes)
    assert sizes[-1] > sizes[0]
    # Sanity floor: a full spill+restore round trip stays sub-second even
    # at the largest window on the slow simulated substrate.
    worst = max(r["write_seconds"] + r["restore_seconds"] for r in rows)
    assert worst < 1.0
