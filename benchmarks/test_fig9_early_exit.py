"""Figure 9 — impact of FDBSCAN's early traversal termination.

Paper shape: the early-exit optimisation always helps FDBSCAN (it can only
remove work), dramatically so when minPts is small; on Porto it makes
FDBSCAN-EarlyExit the fastest implementation at large sizes, while on 3DRoad
and NGSIM RT-DBSCAN remains ahead of both FDBSCAN variants.
"""

from __future__ import annotations

import pytest
from conftest import execute_experiment, ok_records, print_experiment_report


@pytest.mark.parametrize("exp_id", ["fig9a", "fig9b", "fig9c"])
def test_fig9_early_exit(benchmark, exp_id):
    records = benchmark.pedantic(
        lambda: execute_experiment(exp_id), rounds=1, iterations=1
    )
    print_experiment_report(exp_id, records)

    fdb = sorted(ok_records(records, "fdbscan"), key=lambda r: r.num_points)
    early = sorted(ok_records(records, "fdbscan-earlyexit"), key=lambda r: r.num_points)
    rt = sorted(ok_records(records, "rt-dbscan"), key=lambda r: r.num_points)
    assert len(fdb) == len(early) == len(rt)

    # Early exit never makes FDBSCAN slower.
    for plain, ee in zip(fdb, early):
        assert ee.simulated_seconds <= plain.simulated_seconds + 1e-12

    # Labelling is unaffected by the optimisation.
    for plain, ee in zip(fdb, early):
        assert plain.num_clusters == ee.num_clusters
        assert plain.num_noise == ee.num_noise

    if exp_id in ("fig9b", "fig9c"):
        # On 3DRoad and NGSIM, RT-DBSCAN beats FDBSCAN-EarlyExit at the
        # largest dataset size (paper Section VI-B).
        assert rt[-1].simulated_seconds < early[-1].simulated_seconds
