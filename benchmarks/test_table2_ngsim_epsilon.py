"""Table II / Figure 8a — NGSIM raw times and speedup on varying ε.

Paper shape: NGSIM is extremely dense but the swept ε values are so small
that no clusters form at minPts = 100; execution times are essentially flat
across ε for both algorithms, and RT-DBSCAN wins by a very large margin
(~2500x on the authors' hardware — a margin attributed to opaque hardware BVH
behaviour; the analytic cost model reproduces the flatness and the zero-
cluster outcome, and the win direction once the pipeline setup is amortised,
but not that magnitude; see EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np
from conftest import execute_experiment, ok_records, print_experiment_report


def test_table2_ngsim_epsilon_sweep(benchmark):
    records = benchmark.pedantic(
        lambda: execute_experiment("table2"), rounds=1, iterations=1
    )
    print_experiment_report("table2", records)

    rt = ok_records(records, "rt-dbscan")
    fdb = ok_records(records, "fdbscan")
    assert len(rt) == len(fdb) == 5

    # The zero-cluster regime of the paper.
    assert all(r.num_clusters == 0 for r in rt + fdb)

    # Times are flat across eps (within 20%) because the dataset stays in the
    # same "no neighbours found" regime for every swept eps.
    for series in (rt, fdb):
        times = np.array([r.simulated_seconds for r in series])
        assert times.max() <= 1.2 * times.min()
