"""Table I — raw execution time on Porto, varying dataset size.

Paper shape: both implementations slow down super-linearly as the dataset
grows (the Porto regime is dominated by very large neighbourhoods), and
RT-DBSCAN stays a factor of ~2.5x-3x faster than FDBSCAN at every size.
"""

from __future__ import annotations

from conftest import execute_experiment, ok_records, print_experiment_report


def test_table1_porto_raw_times(benchmark):
    records = benchmark.pedantic(
        lambda: execute_experiment("table1"), rounds=1, iterations=1
    )
    print_experiment_report("table1", records)

    rt = sorted(ok_records(records, "rt-dbscan"), key=lambda r: r.num_points)
    fdb = sorted(ok_records(records, "fdbscan"), key=lambda r: r.num_points)
    assert [r.num_points for r in rt] == [r.num_points for r in fdb]

    # RT-DBSCAN is faster at the largest sizes; at the smallest scaled size
    # the fixed RT pipeline setup may still dominate (paper Section V-B1).
    assert rt[-1].simulated_seconds < fdb[-1].simulated_seconds

    # The RT advantage grows with dataset size.
    ratios = [f.simulated_seconds / r.simulated_seconds for r, f in zip(rt, fdb)]
    assert ratios[-1] > ratios[0]

    # Execution time grows monotonically with the dataset size.
    times = [r.simulated_seconds for r in rt]
    assert times == sorted(times)
