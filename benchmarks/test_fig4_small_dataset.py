"""Figure 4 — speedup over CUDA-DClust+ on varying ε (16 K 3DRoad points).

Paper shape: on the small dataset all four GPU implementations fit in memory;
RT-DBSCAN is fastest in most configurations but its margin over FDBSCAN is
small (the ray-tracing setup cost is not amortised), while G-DBSCAN and
CUDA-DClust+ trail because of adjacency-list traversal and index-structure
costs respectively.
"""

from __future__ import annotations

from conftest import execute_experiment, ok_records, print_experiment_report


def test_fig4_speedup_over_cuda_dclust(benchmark):
    records = benchmark.pedantic(
        lambda: execute_experiment("fig4"), rounds=1, iterations=1
    )
    print_experiment_report("fig4", records)

    rt = ok_records(records, "rt-dbscan")
    fdb = ok_records(records, "fdbscan")
    dclust = ok_records(records, "cuda-dclust+")
    gdb = ok_records(records, "g-dbscan")
    assert rt and fdb and dclust and gdb

    # Every algorithm fits in device memory at this size (paper Section V-B1).
    assert all(r.status == "ok" for r in records)

    # RT-DBSCAN and FDBSCAN both beat CUDA-DClust+ at the larger eps values.
    for fast in (rt, fdb):
        assert fast[-1].simulated_seconds < dclust[-1].simulated_seconds

    # G-DBSCAN's all-pairs graph construction makes it the slowest overall.
    assert gdb[-1].simulated_seconds > dclust[-1].simulated_seconds
