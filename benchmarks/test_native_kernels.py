"""Microbenchmarks for the four compiled hot-loop kernels.

Unlike the paper-reproduction benchmarks in this directory (which model the
paper's *simulated* GPU timings), these measure real wall-clock on the host:
each native kernel against the numpy loop it replaces, at the call-site
granularity the dispatcher uses.  They exist to localise a regression when
the perf profile's end-to-end speedup gate trips — run them to see *which*
kernel lost its edge.

Excluded from tier-1 (and plain ``pytest`` runs): wall-clock microbenches are
load-sensitive and would flake CI, and they need the compiled tier.  Opt in
with::

    REPRO_NATIVE_BENCH=1 pytest benchmarks/test_native_kernels.py --benchmark-only -s
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bench.experiments import calibrate_eps
from repro.data.registry import generate

if os.environ.get("REPRO_NATIVE_BENCH", "") != "1":
    pytest.skip(
        "native microbenches are opt-in: set REPRO_NATIVE_BENCH=1",
        allow_module_level=True,
    )

from repro.native import dispatch

if not dispatch.available():
    pytest.skip("native kernel tier unavailable", allow_module_level=True)

N = int(20_000 * float(os.environ.get("REPRO_BENCH_SCALE", "0.5")))
MIN_PTS = 10


@pytest.fixture(scope="module")
def workload():
    pts = generate("ngsim", N, seed=7)
    eps = calibrate_eps(pts, MIN_PTS, 0.25)
    return pts, eps


def _timed_fit(benchmark, backend, pts, eps, native):
    from repro.dbscan.rt_dbscan import RTDBSCAN

    clusterer = RTDBSCAN(eps=eps, min_pts=MIN_PTS, backend=backend, native=native)
    result = benchmark.pedantic(lambda: clusterer.fit(pts), rounds=3, iterations=1)
    expected = "native" if native else "numpy"
    assert result.extra["kernel_tier"] == expected
    return result


@pytest.mark.parametrize("native", (False, True), ids=("numpy", "native"))
class TestKernelMicrobench:
    def test_grid_stencil_gather(self, benchmark, workload, native):
        """27-stencil cell gather: the grid backend's whole query path."""
        pts, eps = workload
        _timed_fit(benchmark, "grid", pts, eps, native)

    def test_bvh_sphere_traversal(self, benchmark, workload, native):
        """Wavefront/DFS sphere-vs-BVH traversal: the rt backend hot loop."""
        pts, eps = workload
        _timed_fit(benchmark, "rt", pts, eps, native)

    def test_brute_blocked_scan(self, benchmark, workload, native):
        """Blocked all-pairs distance scan (quarter scale: O(n^2))."""
        pts, eps = workload
        _timed_fit(benchmark, "brute", pts[: max(N // 4, 500)], eps, native)

    def test_union_find_formation(self, benchmark, workload, native):
        """Cluster-formation union pass, isolated via a precomputed CSR."""
        pts, eps = workload
        from repro.api.registry import make_backend
        from repro.dbscan.disjoint_set import ParallelDisjointSet

        finder = make_backend("grid", pts, eps)
        try:
            indptr, indices, _ = finder.neighbor_csr()
        finally:
            finder.release()
        counts = np.diff(indptr)
        core = counts >= MIN_PTS
        # Core-to-core edges, exactly as the formation pass emits them.
        src = np.repeat(np.arange(pts.shape[0]), counts)
        keep = core[src] & core[indices]
        a, b = src[keep], indices[keep]

        def unions():
            ds = ParallelDisjointSet(pts.shape[0])
            with dispatch.override(native):
                ds.union_edges(a, b)
            return ds

        benchmark.pedantic(unions, rounds=3, iterations=1)
