"""Streaming throughput — beyond the paper's batch experiments.

The streaming subsystem feeds chunks through RT-DBSCAN while maintaining the
ε-sphere scene incrementally.  This benchmark quantifies the two claims the
design rests on:

* the cost-model-driven policy refits the acceleration structure for small
  window updates instead of rebuilding it, so the *maintenance* share of
  simulated time (and the build-primitive counters) drops well below the
  rebuild-per-chunk baseline;
* update throughput (chunks/s and points/s of simulated device time) stays
  within a small factor of the batch path because stage 1 touches only the
  arrived points' neighbourhoods.
"""

from __future__ import annotations

from repro.bench.experiments import run_streaming_experiment


def _print_run(tag, result) -> None:
    s = result.summary
    scene = s["scene"]
    print(f"  {tag:<10} refits={scene['num_refits']:<3} builds={scene['num_builds']:<3} "
          f"maintenance={result.maintenance_seconds:.6f}s "
          f"total={s['total_simulated_seconds']:.6f}s "
          f"updates/s={result.updates_per_simulated_second:,.0f} "
          f"points/s={result.points_per_simulated_second:,.0f}")


def test_streaming_refit_beats_rebuild(benchmark):
    """Refit-path op counts and maintenance time sit strictly below rebuild."""
    auto, rebuild = benchmark.pedantic(
        lambda: (
            run_streaming_experiment("stream-drift", mode="auto"),
            run_streaming_experiment("stream-drift", mode="rebuild"),
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print("=== streaming stream-drift: refit-aware vs rebuild-per-chunk ===")
    _print_run("auto", auto)
    _print_run("rebuild", rebuild)

    a_counts = auto.summary["counts"]
    r_counts = rebuild.summary["counts"]

    # The auto policy must actually exercise the refit path ...
    assert auto.summary["scene"]["num_refits"] > 0
    assert a_counts["bvh_refit_prims"] > 0
    # ... and charge strictly fewer build primitives than rebuild-per-chunk.
    assert a_counts["bvh_build_prims"] < r_counts["bvh_build_prims"]
    # Small updates: refit keeps total accel maintenance time strictly below
    # the rebuild baseline, and the gap carries into the end-to-end total.
    assert auto.maintenance_seconds < rebuild.maintenance_seconds
    assert (
        auto.summary["total_simulated_seconds"]
        < rebuild.summary["total_simulated_seconds"]
    )

    # Both runs cluster the identical feed: labels must agree exactly.
    final_auto = auto.updates[-1]
    final_rebuild = rebuild.updates[-1]
    assert final_auto.num_clusters == final_rebuild.num_clusters
    assert (final_auto.labels == final_rebuild.labels).all()


def test_streaming_dense_corridor_throughput(benchmark):
    """The NGSIM regime (empty neighbourhoods) sustains high update rates."""
    result = benchmark.pedantic(
        lambda: run_streaming_experiment("stream-ngsim", mode="auto"),
        rounds=1,
        iterations=1,
    )
    print()
    print("=== streaming stream-ngsim: dense corridor replay ===")
    _print_run("auto", result)

    # The paper's zero-cluster regime must be preserved chunk after chunk.
    assert all(u.num_clusters == 0 for u in result.updates)
    # Every update processes a full chunk in bounded simulated time; the
    # traversal-bound workload should clear thousands of points per
    # simulated second on the modelled device.
    assert result.points_per_simulated_second > 1_000
    assert result.summary["points_ingested"] == sum(u.num_new for u in result.updates)
