"""Figure 5 — speedup over FDBSCAN on varying ε (3DRoad, Porto, 3DIono).

Paper shape: RT-DBSCAN beats FDBSCAN at every ε, and the speedup grows with
ε because larger neighbourhoods mean more BVH traversal and more intersection
tests — exactly the work the RT cores accelerate.  Maxima reported by the
paper: 1.5x (3DRoad), 2.3x (Porto), 3.6x (3DIono).
"""

from __future__ import annotations

import pytest
from conftest import execute_experiment, ok_records, print_experiment_report

from repro.bench.runner import speedup_series


@pytest.mark.parametrize("exp_id", ["fig5a", "fig5b", "fig5c"])
def test_fig5_speedup_grows_with_eps(benchmark, exp_id):
    records = benchmark.pedantic(
        lambda: execute_experiment(exp_id), rounds=1, iterations=1
    )
    print_experiment_report(exp_id, records)

    series = speedup_series(records, baseline="fdbscan", target="rt-dbscan", key="eps")
    series.sort(key=lambda s: s["eps"])
    speedups = [s["speedup"] for s in series]
    assert len(speedups) == 5

    # RT-DBSCAN wins at the larger eps values...
    assert speedups[-1] > 1.0
    assert speedups[-2] > 1.0
    # ...and the advantage grows with eps.
    assert speedups[-1] > speedups[0]
    assert speedups[-1] == max(speedups)
    # Clusters actually form in this regime.
    assert any(r.num_clusters > 0 for r in ok_records(records, "rt-dbscan"))
