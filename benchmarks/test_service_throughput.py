"""Multi-tenant serving throughput — beyond the paper's batch experiments.

The service layer multiplexes many tenants' streaming engines on one event
loop and coalesces queued chunks into micro-batched updates.  This benchmark
quantifies the two claims the session layer rests on:

* coalescing amortises per-update overhead (scene commits, BVH maintenance,
  kernel launches), so simulated device time for the interleaved ensemble
  drops below the serial one-update-per-chunk baseline;
* the batching is free in accuracy terms: every tenant's final window labels
  are bit-identical to a serial ``consume()`` of its feed.
"""

from __future__ import annotations

from repro.bench.experiments import run_service_experiment


def test_service_batching_beats_serial_consume(benchmark):
    """Micro-batched multi-tenant serving amortises per-update costs."""
    record = benchmark.pedantic(
        lambda: run_service_experiment(),
        rounds=1,
        iterations=1,
    )
    print()
    print("=== multi-tenant service vs serial per-tenant consume ===")
    print(f"  tenants={record['num_tenants']} chunks={record['total_chunks']} "
          f"points={record['total_points']} (skew={record['skew']})")
    print(f"  serial : {record['serial']['updates']} updates, "
          f"{record['serial']['simulated_seconds']:.6f}s simulated, "
          f"{record['serial']['wall_seconds']:.3f}s wall")
    print(f"  service: {record['service']['updates']} updates, "
          f"{record['service']['simulated_seconds']:.6f}s simulated, "
          f"{record['service']['wall_seconds']:.3f}s wall")
    print(f"  batching {record['batching_factor']:.2f}x, simulated speedup "
          f"{record['simulated_speedup_vs_serial']:.2f}x, labels_match="
          f"{record['labels_match']}")

    # Accuracy: serving must not change a single label.
    assert record["labels_match"]
    # Every chunk was ingested, in strictly fewer update() calls.
    assert record["service"]["chunks_ingested"] == record["total_chunks"]
    assert record["service"]["updates"] < record["serial"]["updates"]
    assert record["batching_factor"] > 1.0
    # Amortisation shows up in simulated device time.
    assert (record["service"]["simulated_seconds"]
            < record["serial"]["simulated_seconds"])
