"""Scaling experiment — beyond the paper: tiled scale-out vs monolithic fit.

The partition layer shards the dataset into ε-halo tiles and fits each shard
independently before the halo boundary merge.  This benchmark quantifies the
decomposition's contract:

* labels are bit-identical to the untiled run at every size (the speedup is
  never bought with approximation);
* the per-shard critical path — the wall-clock bound of a real multi-GPU
  deployment — sits below the untiled run's simulated time, while the total
  simulated device work only pays the per-shard pipeline setup on top.
"""

from __future__ import annotations

from conftest import execute_experiment, ok_records, print_experiment_report

from repro.bench.experiments import get_experiment
from repro.data.registry import generate
from repro.dbscan.rt_dbscan import RTDBSCAN
from repro.partition import TiledRTDBSCAN


def test_scaling_tiled_vs_monolithic(benchmark):
    records = benchmark.pedantic(
        lambda: execute_experiment("scaling"), rounds=1, iterations=1
    )
    print_experiment_report("scaling", records)

    tiled = sorted(ok_records(records, "rt-dbscan-tiled"), key=lambda r: r.num_points)
    plain = sorted(ok_records(records, "rt-dbscan"), key=lambda r: r.num_points)
    assert len(tiled) == len(plain) >= 2

    # Identical clustering outcomes at every size.
    for t, p in zip(tiled, plain):
        assert (t.num_clusters, t.num_noise, t.num_core) == (
            p.num_clusters, p.num_noise, p.num_core,
        )


def test_scaling_critical_path_beats_monolithic(benchmark):
    """At the experiment's largest size the 4-shard critical path wins."""
    spec = get_experiment("scaling")
    n = max(spec.sizes)
    points = generate(spec.dataset, n, seed=spec.seed)
    eps = spec.eps_values(points)[0]

    def run_both():
        ref = RTDBSCAN(eps=eps, min_pts=spec.min_pts).fit(points)
        tiled = TiledRTDBSCAN(eps=eps, min_pts=spec.min_pts, tiles=4).fit(points)
        return ref, tiled

    ref, tiled = benchmark.pedantic(run_both, rounds=1, iterations=1)

    assert (tiled.labels == ref.labels).all()
    critical = tiled.extra["critical_path_seconds"]
    total = tiled.report.total_simulated_seconds
    print()
    print(f"=== scaling n={n}: monolithic vs 4 tiles ===")
    print(f"  untiled simulated: {ref.report.total_simulated_seconds * 1e3:.3f} ms")
    print(f"  tiled total work:  {total * 1e3:.3f} ms "
          f"({tiled.extra['num_boundary_pairs']} boundary pairs)")
    print(f"  tiled critical path: {critical * 1e3:.3f} ms "
          f"(speedup bound {tiled.report.metadata['parallel_speedup_bound']:.2f}x)")
    assert 0 < critical < total
    # The per-shard critical path must beat the monolithic pass even though
    # each shard pays its own pipeline setup.
    assert critical < ref.report.total_simulated_seconds