"""Figure 7 — execution-time growth with dataset size on 3DIono.

Paper shape: both curves grow with the dataset size, but RT-DBSCAN's growth
rate is visibly slower than FDBSCAN's, i.e. the ratio of FDBSCAN time to
RT-DBSCAN time increases with n.
"""

from __future__ import annotations

from conftest import execute_experiment, ok_records, print_experiment_report


def test_fig7_growth_rate(benchmark):
    records = benchmark.pedantic(
        lambda: execute_experiment("fig7"), rounds=1, iterations=1
    )
    print_experiment_report("fig7", records)

    rt = sorted(ok_records(records, "rt-dbscan"), key=lambda r: r.num_points)
    fdb = sorted(ok_records(records, "fdbscan"), key=lambda r: r.num_points)
    assert len(rt) == len(fdb) >= 3

    # Times grow with dataset size for both algorithms.
    rt_times = [r.simulated_seconds for r in rt]
    fdb_times = [r.simulated_seconds for r in fdb]
    assert rt_times == sorted(rt_times)
    assert fdb_times == sorted(fdb_times)

    # FDBSCAN grows faster: its largest/smallest ratio exceeds RT-DBSCAN's.
    fdb_growth = fdb_times[-1] / fdb_times[0]
    rt_growth = rt_times[-1] / rt_times[0]
    assert fdb_growth > rt_growth
