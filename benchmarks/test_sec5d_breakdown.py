"""Section V-D — runtime breakdown of RT-DBSCAN vs FDBSCAN (3DIono).

Paper shape (1 M 3DIono points, ε = 0.25, minPts = 100):

* the OptiX sphere-BVH build is ~2.5x more expensive than FDBSCAN's plain
  spatial build;
* the two clustering stages run ~9x faster on the RT device;
* as a consequence RT-DBSCAN spends roughly half of its total time on the
  BVH build, while FDBSCAN spends ~94% of its time on clustering.
"""

from __future__ import annotations

from conftest import execute_experiment, ok_records, print_experiment_report


def _clustering_seconds(record) -> float:
    return (
        record.breakdown["core_identification"] + record.breakdown["cluster_formation"]
    )


def test_sec5d_breakdown(benchmark):
    records = benchmark.pedantic(
        lambda: execute_experiment("sec5d"), rounds=1, iterations=1
    )
    print_experiment_report("sec5d", records)

    rt = ok_records(records, "rt-dbscan")[-1]
    fdb = ok_records(records, "fdbscan")[-1]

    # BVH build: RT (OptiX-style) build costs more than the plain build
    # (~2.5x asymptotically; at reduced benchmark scale the fixed pipeline
    # setup inflates the ratio, so the accepted band is wider).
    build_ratio = rt.breakdown["bvh_build"] / fdb.breakdown["bvh_build"]
    assert 1.5 <= build_ratio <= 6.5

    # Clustering stages are several times faster on the RT device.
    clustering_speedup = _clustering_seconds(fdb) / _clustering_seconds(rt)
    assert clustering_speedup > 3.0

    # FDBSCAN's runtime is dominated by clustering work (paper: ~94%).
    fdb_fraction = _clustering_seconds(fdb) / fdb.simulated_seconds
    assert fdb_fraction > 0.85

    # RT-DBSCAN spends a much larger share of its time on the BVH build.
    rt_build_fraction = rt.breakdown["bvh_build"] / rt.simulated_seconds
    fdb_build_fraction = fdb.breakdown["bvh_build"] / fdb.simulated_seconds
    assert rt_build_fraction > 3 * fdb_build_fraction
