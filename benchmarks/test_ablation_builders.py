"""Ablation — acceleration-structure builder and device configuration.

Not a figure from the paper, but an ablation DESIGN.md calls out: how much of
RT-DBSCAN's advantage comes from the hardware traversal (RT cores present vs
the same pipeline with BVH work priced at shader-core rates, which is how
OptiX falls back on GPUs without RT cores), and how sensitive the result is
to the BVH builder (LBVH vs binned SAH) and leaf size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.registry import generate
from repro.dbscan.rt_dbscan import RTDBSCAN
from repro.neighbors.knn import suggest_eps
from repro.rtcore.device import RTDevice


@pytest.fixture(scope="module")
def iono_points():
    return generate("3diono", 8_000, seed=7)


@pytest.fixture(scope="module")
def iono_eps(iono_points):
    return suggest_eps(iono_points, min_pts=50, quantile=0.3)


def test_rt_cores_vs_software_fallback(benchmark, iono_points, iono_eps):
    def run():
        with_rt = RTDBSCAN(eps=iono_eps, min_pts=50, device=RTDevice(has_rt_cores=True))
        without_rt = RTDBSCAN(eps=iono_eps, min_pts=50, device=RTDevice(has_rt_cores=False))
        return with_rt.fit(iono_points), without_rt.fit(iono_points)

    hw, sw = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nRT cores: {hw.report.total_simulated_seconds * 1e3:.3f} ms   "
          f"software fallback: {sw.report.total_simulated_seconds * 1e3:.3f} ms")
    # The same pipeline without RT cores is slower, and the labelling is identical.
    assert sw.report.total_simulated_seconds > hw.report.total_simulated_seconds
    np.testing.assert_array_equal(hw.labels, sw.labels)


@pytest.mark.parametrize("builder", ["lbvh", "sah"])
@pytest.mark.parametrize("leaf_size", [2, 8])
def test_builder_and_leaf_size_ablation(benchmark, iono_points, iono_eps, builder, leaf_size):
    result = benchmark.pedantic(
        lambda: RTDBSCAN(
            eps=iono_eps, min_pts=50, builder=builder, leaf_size=leaf_size
        ).fit(iono_points),
        rounds=1,
        iterations=1,
    )
    reference = RTDBSCAN(eps=iono_eps, min_pts=50).fit(iono_points)
    print(f"\nbuilder={builder} leaf_size={leaf_size}: "
          f"{result.report.total_simulated_seconds * 1e3:.3f} ms "
          f"(clusters={result.num_clusters})")
    # The clustering output must not depend on the acceleration structure.
    np.testing.assert_array_equal(result.labels, reference.labels)
    assert result.report.total_simulated_seconds > 0
