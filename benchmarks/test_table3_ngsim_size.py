"""Table III / Figure 8b — NGSIM raw times and speedup on varying dataset size.

Paper shape: execution time grows with the dataset size for both algorithms
and RT-DBSCAN wins by a very large margin at every size.  The analytic model
reproduces the growth and gives RT-DBSCAN the win once the dataset is large
enough to amortise the RT pipeline setup; the paper's extreme (10^3x-scale)
margins stem from hardware BVH behaviour on this degenerate input that the
authors themselves could not fully explain (see EXPERIMENTS.md).
"""

from __future__ import annotations

from conftest import execute_experiment, ok_records, print_experiment_report


def test_table3_ngsim_size_sweep(benchmark):
    records = benchmark.pedantic(
        lambda: execute_experiment("table3"), rounds=1, iterations=1
    )
    print_experiment_report("table3", records)

    rt = sorted(ok_records(records, "rt-dbscan"), key=lambda r: r.num_points)
    fdb = sorted(ok_records(records, "fdbscan"), key=lambda r: r.num_points)
    assert [r.num_points for r in rt] == [r.num_points for r in fdb]

    # Zero clusters at every size (paper Section V-C).
    assert all(r.num_clusters == 0 for r in rt + fdb)

    # Execution time grows with size for both algorithms.
    assert [r.simulated_seconds for r in rt] == sorted(r.simulated_seconds for r in rt)
    assert [r.simulated_seconds for r in fdb] == sorted(r.simulated_seconds for r in fdb)

    # RT-DBSCAN's advantage improves as the dataset grows (setup amortised).
    ratios = [f.simulated_seconds / r.simulated_seconds for r, f in zip(rt, fdb)]
    assert ratios[-1] > ratios[0]
