"""Section VI-C — tessellating the ε-spheres into triangles.

Paper shape: replacing the custom sphere Intersection program with triangle
geometry (so the "hardware" ray-triangle test is used) slows RT-DBSCAN down
by 2x-5x, because every hit must be routed through the AnyHit program and the
scene has many more primitives.  The clustering output is unchanged.
"""

from __future__ import annotations

from conftest import execute_experiment, ok_records, print_experiment_report


def test_sec6c_triangle_mode_slowdown(benchmark):
    records = benchmark.pedantic(
        lambda: execute_experiment("sec6c"), rounds=1, iterations=1
    )
    print_experiment_report("sec6c", records)

    sphere = ok_records(records, "rt-dbscan")[-1]
    triangle = ok_records(records, "rt-dbscan-triangles")[-1]

    slowdown = triangle.simulated_seconds / sphere.simulated_seconds
    # Triangle mode is substantially slower, in the 2x-8x band (the paper
    # reports 2x-5x on real hardware).
    assert slowdown > 1.5
    assert slowdown < 10.0

    # The clustering result itself is identical.
    assert triangle.num_clusters == sphere.num_clusters
    assert triangle.num_noise == sphere.num_noise
