"""Figure 6 — speedup over FDBSCAN on varying dataset size (3DRoad, Porto, 3DIono).

Paper shape: RT-DBSCAN outperforms FDBSCAN at every size and the gap widens
as the dataset grows, because the fixed cost of setting up the RT pipeline is
amortised and the RT cores are built to handle large ray counts.  Maxima
reported by the paper: 1.37x (3DRoad), 2.9x (Porto), 4.1x (3DIono).
"""

from __future__ import annotations

import pytest
from conftest import execute_experiment, print_experiment_report

from repro.bench.runner import speedup_series


@pytest.mark.parametrize("exp_id", ["fig6a", "fig6b", "fig6c"])
def test_fig6_speedup_grows_with_size(benchmark, exp_id):
    records = benchmark.pedantic(
        lambda: execute_experiment(exp_id), rounds=1, iterations=1
    )
    print_experiment_report(exp_id, records)

    series = speedup_series(
        records, baseline="fdbscan", target="rt-dbscan", key="num_points"
    )
    series.sort(key=lambda s: s["num_points"])
    speedups = [s["speedup"] for s in series]

    # RT-DBSCAN wins at the largest sizes and the gap widens with size.
    assert speedups[-1] > 1.0
    assert speedups[-1] > speedups[0]
    assert speedups[-1] == max(speedups)
