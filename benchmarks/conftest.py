"""Shared helpers for the paper-reproduction benchmarks.

Each benchmark file regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Dataset sizes default to the scaled-down
configurations in :mod:`repro.bench.experiments` multiplied by
``REPRO_BENCH_SCALE`` (default 0.5) so the whole suite completes in minutes on
a laptop; set the environment variable to 1.0 (or higher) for larger runs.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the paper-style
tables printed by each benchmark.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.experiments import get_experiment, run_experiment
from repro.bench.report import format_breakdown, format_speedup_table, format_time_table
from repro.bench.runner import RunRecord

DEFAULT_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


def execute_experiment(exp_id: str, *, scale: float | None = None) -> list[RunRecord]:
    """Run a registered experiment at the benchmark scale."""
    return run_experiment(exp_id, scale=DEFAULT_SCALE if scale is None else scale)


def print_experiment_report(exp_id: str, records: list[RunRecord]) -> None:
    """Print the paper-style tables for one experiment's records."""
    spec = get_experiment(exp_id)
    vary = "eps" if spec.mode == "eps_sweep" else "num_points"
    print()
    print(f"=== {spec.paper_ref}: {spec.title} ===")
    print(f"    dataset={spec.dataset} minPts={spec.min_pts} "
          f"(paper sizes {spec.paper_sizes}, scaled sizes {spec.sizes}, "
          f"bench scale {DEFAULT_SCALE})")
    print(format_time_table(records, algorithms=list(spec.algorithms), vary=vary,
                            title="Simulated execution time"))
    targets = [a for a in spec.algorithms if a != spec.baseline]
    print(format_speedup_table(records, baseline=spec.baseline, targets=targets, vary=vary,
                               title=f"Speedup over {spec.baseline}"))
    if spec.mode == "breakdown":
        for record in records:
            if record.status == "ok":
                print(format_breakdown(record))


def ok_records(records: list[RunRecord], algorithm: str) -> list[RunRecord]:
    """Successful records of one algorithm, ordered as produced."""
    return [r for r in records if r.algorithm == algorithm and r.status == "ok"]


@pytest.fixture
def bench_scale() -> float:
    return DEFAULT_SCALE
