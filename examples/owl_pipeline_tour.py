#!/usr/bin/env python
"""A tour of the OWL-style ray-tracing pipeline underneath RT-DBSCAN.

The paper implements its neighbour search directly against OWL (the OptiX 7
Wrapper Library).  This example drives the simulated equivalent at the same
level of abstraction, mirroring the structure of an OWL host program:

1. create a context on the (simulated) RT device;
2. declare the ε-sphere geometry type with its Intersection program;
3. build the acceleration structure (the "group");
4. launch one infinitesimally short ray per point and collect hits;
5. read the hardware counters the timing model is built on;
6. repeat the launch with the Section VI-C triangle tessellation to see why
   the paper rejects that variant.

Run with:  python examples/owl_pipeline_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.data import make_blobs
from repro.rtcore import RTDevice, owl_context_create


def main() -> None:
    points_2d, _ = make_blobs(5_000, centers=6, std=0.25, box=8.0, seed=21)
    points = np.column_stack([points_2d, np.zeros(len(points_2d))])  # lift to 3D
    eps = 0.3

    # 1. Context -------------------------------------------------------- #
    device = RTDevice()
    context = owl_context_create(device)
    print(f"device: {device.name} (RT cores: {device.has_rt_cores}, "
          f"memory {device.memory.capacity_bytes / 2**30:.0f} GiB)")

    # 2./3. Geometry type, geometry and acceleration structure ---------- #
    _, sphere_geom = context.create_sphere_geom_type(points, eps)
    group = context.build_group(sphere_geom, builder="lbvh", leaf_size=4)
    print(f"sphere scene: {sphere_geom.num_primitives} primitives, "
          f"BVH build {group.build_seconds * 1e3:.3f} ms (simulated)")

    # 4. Launch ---------------------------------------------------------- #
    query_idx, prim_idx, stats = group.launch_hits(points)
    counts = np.bincount(query_idx, minlength=len(points))
    print(f"launched {stats.num_rays} epsilon-rays -> {stats.confirmed_hits} confirmed hits")
    print(f"mean neighbours per point: {counts.mean():.1f} (max {counts.max()})")

    # 5. Hardware counters ----------------------------------------------- #
    print("\nlaunch counters (what the cost model charges):")
    print(f"  BVH node visits        {stats.traversal.node_visits:>12,}")
    print(f"  leaf visits            {stats.traversal.leaf_visits:>12,}")
    print(f"  Intersection calls     {stats.intersection_calls:>12,}")
    print(f"  AnyHit calls           {stats.anyhit_calls:>12,}")
    print(f"  simulated launch time  {stats.simulated_seconds * 1e3:>11.3f} ms")

    # 6. Triangle mode (Section VI-C) ------------------------------------ #
    _, tri_geom = context.create_triangle_geom_type(points, eps, subdivisions=0)
    tri_group = context.build_group(tri_geom)
    _, _, tri_stats = tri_group.launch_hits(points)
    print(f"\ntriangle tessellation: {tri_geom.num_primitives} primitives "
          f"(20 triangles per sphere)")
    print(f"  BVH build              {tri_group.build_seconds * 1e3:>11.3f} ms")
    print(f"  AnyHit calls           {tri_stats.anyhit_calls:>12,}")
    print(f"  simulated launch time  {tri_stats.simulated_seconds * 1e3:>11.3f} ms")
    slowdown = (tri_stats.simulated_seconds + tri_group.build_seconds) / (
        stats.simulated_seconds + group.build_seconds
    )
    print(f"  end-to-end slowdown vs sphere Intersection program: {slowdown:.1f}x "
          "(the paper measured 2x-5x)")

    context.destroy()


if __name__ == "__main__":
    main()
