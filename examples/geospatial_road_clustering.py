#!/usr/bin/env python
"""Geospatial clustering of a road-network dataset (the paper's 3DRoad workload).

DBSCAN on GPS points sampled along a regional road network: the clusters that
emerge are towns and busy road segments, while isolated rural samples are
noise.  This is the workload behind Figs. 4, 5a, 6a and 9b of the paper.

The example compares RT-DBSCAN against the three GPU baselines on the same
data, reports the simulated execution times (who wins and by how much), and
shows how ε changes the granularity of the clustering — the "few large
clusters vs many small clusters" regimes the paper sweeps.

Run with:  python examples/geospatial_road_clustering.py
"""

from __future__ import annotations

from repro import cuda_dclust_plus, fdbscan, gdbscan, rt_dbscan
from repro.data import generate_road3d
from repro.metrics import compare_results
from repro.neighbors import suggest_eps


def main() -> None:
    # The paper uses 16 K 3DRoad points for the all-baselines comparison
    # because the memory-hungry baselines cannot go much larger (Fig. 4).
    points = generate_road3d(16_000, seed=3)
    min_pts = 100
    eps = suggest_eps(points, min_pts=min_pts, quantile=0.30)
    print(f"3DRoad-like dataset: {len(points)} points, eps={eps:.4f}, minPts={min_pts}")

    # ------------------------------------------------------------------ #
    # Run all four GPU implementations on the same configuration.
    # ------------------------------------------------------------------ #
    runs = {
        "rt-dbscan": rt_dbscan(points, eps, min_pts),
        "fdbscan": fdbscan(points, eps, min_pts),
        "g-dbscan": gdbscan(points, eps, min_pts),
        "cuda-dclust+": cuda_dclust_plus(points, eps, min_pts),
    }

    print(f"\n{'algorithm':<14} {'sim time':>12} {'clusters':>9} {'noise':>8} {'agrees':>7}")
    reference = runs["rt-dbscan"]
    for name, result in runs.items():
        agrees = compare_results(reference, result, points=points).equivalent
        print(f"{name:<14} {result.report.total_simulated_seconds * 1e3:>10.3f}ms "
              f"{result.num_clusters:>9} {result.num_noise:>8} {str(agrees):>7}")

    baseline = runs["cuda-dclust+"].report.total_simulated_seconds
    print("\nspeedup over CUDA-DClust+ (the paper's Fig. 4 view):")
    for name, result in runs.items():
        speedup = baseline / result.report.total_simulated_seconds
        print(f"  {name:<14} {speedup:6.2f}x")

    # ------------------------------------------------------------------ #
    # Sweep eps to show the clustering-granularity regimes.
    # ------------------------------------------------------------------ #
    print("\neps sweep (RT-DBSCAN):")
    print(f"{'eps':>10} {'clusters':>9} {'noise':>8} {'largest cluster':>16}")
    for factor in (0.5, 1.0, 2.0, 4.0):
        result = rt_dbscan(points, eps * factor, min_pts)
        largest = int(result.cluster_sizes().max()) if result.num_clusters else 0
        print(f"{eps * factor:>10.4f} {result.num_clusters:>9} {result.num_noise:>8} {largest:>16}")


if __name__ == "__main__":
    main()
