#!/usr/bin/env python
"""Taxi-GPS hotspot detection and the dense-trajectory stress case.

Two of the paper's workloads in one example:

* **Porto-like taxi GPS data** — DBSCAN finds pickup/dropoff hotspots; we
  re-use the saved per-point neighbour counts to re-cluster with different
  ``minPts`` values *without* re-running the core-point identification stage
  (the multi-run use case of Section VI-B that motivates skipping the
  early-exit optimisation).
* **NGSIM-like highway trajectories** — the extremely dense corridor where
  the swept ε values produce zero clusters (Section V-C); the point of the
  exercise is how cheaply each implementation discovers that.

Run with:  python examples/trajectory_hotspots.py
"""

from __future__ import annotations

import numpy as np

from repro import RTDBSCAN, fdbscan, rt_dbscan
from repro.data import NGSIM_DEFAULTS, generate_ngsim, generate_porto
from repro.neighbors import suggest_eps


def porto_hotspots() -> None:
    print("=" * 70)
    print("Porto-like taxi GPS: hotspot detection and minPts re-runs")
    print("=" * 70)
    points = generate_porto(30_000, seed=11)
    min_pts = 100
    eps = suggest_eps(points, min_pts=min_pts, quantile=0.30)
    print(f"{len(points)} points, eps={eps:.4f}")

    clusterer = RTDBSCAN(eps=eps, min_pts=min_pts, keep_neighbor_counts=True)
    result = clusterer.fit(points)
    print(f"minPts={min_pts}: {result.num_clusters} hotspots, "
          f"{result.num_noise} noise points, "
          f"sim time {result.report.total_simulated_seconds * 1e3:.2f} ms")

    # Because RT-DBSCAN records every point's neighbour count, changing
    # minPts only requires re-thresholding the saved counts plus the cluster
    # formation pass — the expensive stage-1 launch is not repeated.
    counts = result.neighbor_counts
    print("\nre-using saved neighbour counts for other minPts values:")
    for new_min_pts in (50, 200, 500):
        cores = int((counts >= new_min_pts).sum())
        rerun = rt_dbscan(points, eps, new_min_pts)
        print(f"  minPts={new_min_pts:>4}: {cores:>6} core points "
              f"-> {rerun.num_clusters} hotspots, {rerun.num_noise} noise")


def ngsim_dense_corridor() -> None:
    print()
    print("=" * 70)
    print("NGSIM-like highway trajectories: the dense, zero-cluster regime")
    print("=" * 70)
    points = generate_ngsim(50_000, seed=12)
    min_pts = NGSIM_DEFAULTS["min_pts"]
    print(f"{len(points)} points squeezed into a "
          f"{np.ptp(points[:, 0]):.0f} x {np.ptp(points[:, 1]):.0f} ft corridor")

    print(f"\n{'eps':>10} {'algorithm':<12} {'clusters':>9} {'sim time':>12}")
    for eps in NGSIM_DEFAULTS["eps_sweep"]:
        for name, fn in (("rt-dbscan", rt_dbscan), ("fdbscan", fdbscan)):
            result = fn(points, eps, min_pts)
            print(f"{eps:>10.5f} {name:<12} {result.num_clusters:>9} "
                  f"{result.report.total_simulated_seconds * 1e3:>10.3f}ms")
    print("\nNo clusters form at any swept eps — the dataset is dense in point "
          "count but the eps values are far below the inter-vehicle spacing.")


def main() -> None:
    porto_hotspots()
    ngsim_dense_corridor()


if __name__ == "__main__":
    main()
