#!/usr/bin/env python
"""Quickstart: cluster a synthetic point cloud with RT-DBSCAN.

Demonstrates the smallest possible end-to-end use of the library:

1. generate a 2D dataset (Gaussian blobs plus background noise);
2. pick ε with the k-distance heuristic;
3. run RT-DBSCAN on the simulated RT device;
4. verify the result against the sequential reference implementation;
5. print the clustering summary and the Section V-D style phase breakdown;
6. show the same pipeline through the unified estimator API — the
   ``repro.cluster`` facade, a CPU neighbour backend, and a minPts refit.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro import classic_dbscan, rt_dbscan
from repro.data import make_blobs, make_uniform_noise
from repro.metrics import compare_results
from repro.neighbors import suggest_eps


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Build a dataset: four clusters of different densities plus noise.
    # ------------------------------------------------------------------ #
    rng = np.random.default_rng(42)
    clusters, _ = make_blobs(
        4_000,
        centers=np.array([[0.0, 0.0], [6.0, 1.0], [3.0, 6.0], [-4.0, 5.0]]),
        std=np.array([0.30, 0.45, 0.25, 0.60]),
        seed=rng,
    )
    noise = make_uniform_noise(400, low=-8.0, high=10.0, dim=2, seed=rng)
    points = np.vstack([clusters, noise])
    print(f"dataset: {len(points)} points in {points.shape[1]}D")

    # ------------------------------------------------------------------ #
    # 2. Choose parameters.  minPts is picked by hand; eps comes from the
    #    k-distance heuristic so most cluster points become core points.
    # ------------------------------------------------------------------ #
    min_pts = 10
    eps = suggest_eps(points, min_pts=min_pts, quantile=0.90)
    print(f"parameters: eps={eps:.3f}  minPts={min_pts}")

    # ------------------------------------------------------------------ #
    # 3. Cluster with RT-DBSCAN (Algorithm 3 on the simulated RT device).
    # ------------------------------------------------------------------ #
    result = rt_dbscan(points, eps=eps, min_pts=min_pts)
    print(f"\nRT-DBSCAN found {result.num_clusters} clusters, "
          f"{result.num_noise} noise points "
          f"({int(result.core_mask.sum())} core / {int(result.border_mask.sum())} border)")
    print("cluster sizes:", result.cluster_sizes().tolist())

    # ------------------------------------------------------------------ #
    # 4. Verify against the sequential oracle (Algorithm 1).
    # ------------------------------------------------------------------ #
    reference = classic_dbscan(points, eps=eps, min_pts=min_pts)
    agreement = compare_results(reference, result, points=points)
    print(f"\nagreement with sequential DBSCAN: equivalent={agreement.equivalent} "
          f"(ARI={agreement.ari:.4f})")

    # ------------------------------------------------------------------ #
    # 5. Inspect where the simulated device spent its time.
    # ------------------------------------------------------------------ #
    print("\nsimulated device time breakdown:")
    total = result.report.total_simulated_seconds
    for phase in result.report.phases:
        share = 100.0 * phase.simulated_seconds / total if total else 0.0
        print(f"  {phase.name:<22} {phase.simulated_seconds * 1e3:8.3f} ms  ({share:5.1f}%)")
    print(f"  {'total':<22} {total * 1e3:8.3f} ms")

    # ------------------------------------------------------------------ #
    # 6. The same run through the unified estimator API.  Any registered
    #    algorithm/backend is one call away, labels are identical to the
    #    constructor path, and a stored-counts refit skips stage 1.
    # ------------------------------------------------------------------ #
    facade = repro.cluster(points, "rt-dbscan", eps=eps, min_pts=min_pts)
    on_kdtree = repro.cluster(points, "rt-dbscan", eps=eps, min_pts=min_pts,
                              backend="kdtree")
    assert np.array_equal(facade.labels, result.labels)
    assert np.array_equal(on_kdtree.labels, result.labels)
    stricter = result.refit(min_pts=2 * min_pts)
    print(f"\nestimator API: repro.cluster matches the constructor path on "
          f"{len(repro.list_backends())} backends; "
          f"refit(minPts={2 * min_pts}) -> {stricter.num_clusters} clusters "
          f"without a second stage-1 launch")


if __name__ == "__main__":
    main()
