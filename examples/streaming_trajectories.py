#!/usr/bin/env python
"""Streaming trajectory clustering with a sliding window.

Vehicle-trajectory data arrives continuously — NGSIM samples vehicle
positions at 10 Hz — which makes it the natural demonstration for the
streaming subsystem: chunks of fresh samples enter a sliding window, stale
samples leave it, and the ε-sphere scene is *refit* (not rebuilt) whenever
the cost model says the update is small enough.

Two feeds are shown:

* **NGSIM-like corridor replay** — the paper's dense, zero-cluster regime
  (Section V-C) as a stream: every window confirms "no clusters" cheaply,
  chunk after chunk;
* **drifting hotspots** — blob centres random-walk between chunks, so the
  window watches clusters move, merge and dissolve, and the per-update
  report shows when eviction forced a re-clustering pass.

Run with:  python examples/streaming_trajectories.py
"""

from __future__ import annotations

import numpy as np

from repro import RefitPolicy, StreamingRTDBSCAN
from repro.data import make_stream
from repro.neighbors import suggest_eps


def _print_updates(engine: StreamingRTDBSCAN, updates) -> None:
    print(f"{'chunk':>5} {'window':>7} {'clusters':>8} {'noise':>6} "
          f"{'accel':>8} {'recluster':>9} {'sim_ms':>9}")
    for u in updates:
        print(f"{u.chunk_index:>5} {u.window_size:>7} {u.num_clusters:>8} "
              f"{u.num_noise:>6} {u.accel_action:>8} {str(u.reclustered):>9} "
              f"{u.simulated_seconds * 1e3:>9.3f}")
    scene = engine.scene.summary()
    print(f"scene maintenance: {scene['num_refits']} refits, "
          f"{scene['num_builds']} builds over {engine.num_updates} updates")


def ngsim_replay() -> None:
    print("=" * 70)
    print("NGSIM-like corridor replay: dense feed, zero clusters per window")
    print("=" * 70)
    engine = StreamingRTDBSCAN(
        eps=0.0005, min_pts=100, window=2000, policy=RefitPolicy(mode="auto"),
        initial_capacity=2400,
    )
    updates = engine.consume(make_stream("ngsim-replay", 10, 400, seed=12))
    _print_updates(engine, updates)
    assert all(u.num_clusters == 0 for u in updates)
    print("every window confirmed the zero-cluster regime "
          f"({engine.points_ingested} points ingested)\n")


def drifting_hotspots() -> None:
    print("=" * 70)
    print("Drifting hotspots: clusters move through a sliding window")
    print("=" * 70)
    chunks = list(make_stream("drift-blobs", 14, 150, seed=7, drift=0.4))
    eps = suggest_eps(np.vstack(chunks), min_pts=5, quantile=0.30)
    print(f"calibrated eps={eps:.4f}")
    # The engine is a context manager: the slot-buffer scene is released on
    # exit, which is the same teardown path the serving layer uses when it
    # evicts an idle session.
    with StreamingRTDBSCAN(
        eps=eps, min_pts=5, window=1200, policy=RefitPolicy(mode="auto"),
        initial_capacity=1400,
    ) as engine:
        updates = engine.consume(chunks)
        _print_updates(engine, updates)

        # The latest window is also available as a batch-style result, so all
        # the batch tooling (metrics, report formatters) applies directly.
        result = engine.result()
        sizes = result.cluster_sizes()
        top = ", ".join(str(int(s)) for s in np.sort(sizes)[::-1][:5])
        print(f"current window: {result.num_clusters} clusters "
              f"(largest sizes: {top}), {result.num_noise} noise points")


def main() -> None:
    ngsim_replay()
    drifting_hotspots()


if __name__ == "__main__":
    main()
