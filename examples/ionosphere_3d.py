#!/usr/bin/env python
"""3D clustering of ionosphere TEC samples (the paper's 3DIono workload).

The only genuinely 3D dataset in the paper's evaluation: points are
(latitude, longitude, total-electron-content) samples.  The example

1. clusters the 3D data with RT-DBSCAN and FDBSCAN,
2. reproduces the Section V-D runtime breakdown at a laptop scale, and
3. shows the direct use of the lower-level RT-FindNeighborhood primitive
   (Algorithm 2) for a one-off fixed-radius query, which is how the paper's
   reduction can be reused outside DBSCAN (kNN, density estimation, ...).

Run with:  python examples/ionosphere_3d.py
"""

from __future__ import annotations

import numpy as np

from repro import fdbscan, rt_dbscan
from repro.data import generate_iono3d
from repro.neighbors import RTNeighborFinder, suggest_eps


def main() -> None:
    points = generate_iono3d(25_000, seed=5)
    min_pts = 100
    eps = suggest_eps(points, min_pts=min_pts, quantile=0.30)
    print(f"3DIono-like dataset: {len(points)} points in 3D, eps={eps:.3f}, minPts={min_pts}")

    # ------------------------------------------------------------------ #
    # RT-DBSCAN vs FDBSCAN, with the Section V-D breakdown.
    # ------------------------------------------------------------------ #
    rt = rt_dbscan(points, eps, min_pts)
    fdb = fdbscan(points, eps, min_pts)
    speedup = fdb.report.total_simulated_seconds / rt.report.total_simulated_seconds
    print(f"\nRT-DBSCAN:  {rt.report.total_simulated_seconds * 1e3:8.2f} ms  "
          f"({rt.num_clusters} clusters, {rt.num_noise} noise)")
    print(f"FDBSCAN:    {fdb.report.total_simulated_seconds * 1e3:8.2f} ms  "
          f"({fdb.num_clusters} clusters, {fdb.num_noise} noise)")
    print(f"speedup:    {speedup:.2f}x  (paper reports up to 3.6x on this dataset)")

    print("\nphase breakdown (simulated milliseconds):")
    print(f"{'phase':<22} {'RT-DBSCAN':>12} {'FDBSCAN':>12}")
    for phase in ("bvh_build", "core_identification", "cluster_formation"):
        print(f"{phase:<22} {rt.report.breakdown()[phase] * 1e3:>12.3f} "
              f"{fdb.report.breakdown()[phase] * 1e3:>12.3f}")
    clustering_rt = rt.report.breakdown()["core_identification"] + rt.report.breakdown()["cluster_formation"]
    clustering_fdb = fdb.report.breakdown()["core_identification"] + fdb.report.breakdown()["cluster_formation"]
    print(f"\nclustering-only speedup: {clustering_fdb / clustering_rt:.1f}x "
          "(paper: ~9x); the OptiX-style build is the price RT-DBSCAN pays up front.")

    # ------------------------------------------------------------------ #
    # Direct use of RT-FindNeighborhood (Algorithm 2).
    # ------------------------------------------------------------------ #
    print("\nRT-FindNeighborhood as a standalone primitive:")
    finder = RTNeighborFinder(points, radius=eps)
    # Probe two locations near actual measurements (a query need not be part
    # of the indexed dataset).
    probe = points[[10, 5000]] + np.array([0.1, -0.1, 0.5])
    lists = finder.neighbor_lists(probe)
    for q, neighbours in zip(probe, lists):
        print(f"  query {np.array2string(q, precision=1)}: "
              f"{len(neighbours)} points within eps={eps:.3f}")
    finder.release()


if __name__ == "__main__":
    main()
