"""Setup shim.

The environment this reproduction targets has no network access and an older
setuptools without PEP 660 editable-wheel support, so ``pip install -e .``
falls back to the legacy ``setup.py develop`` path provided here.  All
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
